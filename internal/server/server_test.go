package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ecgrid/internal/batch"
	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
	"ecgrid/internal/store"
)

// smallCfg is a scenario that simulates in milliseconds.
func smallCfg(seed int64) scenario.Config {
	cfg := scenario.Default(scenario.ECGRID)
	cfg.Hosts = 8
	cfg.Flows = 2
	cfg.Duration = 10
	cfg.Seed = seed
	return cfg
}

// newTestServer builds a Server over a fresh store, wrapped in an
// httptest listener. mutate adjusts the Config before New.
func newTestServer(t *testing.T, mutate func(*Config)) (*httptest.Server, *Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: st, Workers: 4, QueueDepth: 8, MaxWait: 30 * time.Second}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv, st
}

// postRun POSTs cfg to /v1/run and returns the response.
func postRun(t *testing.T, ts *httptest.Server, cfg scenario.Config, query string) *http.Response {
	t.Helper()
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/run"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRunMissThenHit(t *testing.T) {
	ts, _, st := newTestServer(t, nil)
	cfg := smallCfg(1)

	resp := postRun(t, ts, cfg, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold run X-Cache = %q, want miss", got)
	}
	key := resp.Header.Get("X-Content-Key")
	first := readAll(t, resp)

	resp2 := postRun(t, ts, cfg, "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm run status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("warm run X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(readAll(t, resp2), first) {
		t.Fatal("hit response differs from miss response")
	}

	// The result endpoint serves the same bytes.
	resp3, err := http.Get(ts.URL + "/v1/result/" + key)
	if err != nil {
		t.Fatal(err)
	}
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp3.StatusCode)
	}
	if !bytes.Equal(readAll(t, resp3), first) {
		t.Fatal("GET /v1/result differs from POST /v1/run response")
	}

	// And the store holds exactly one entry — the same bytes again.
	if n, err := st.Len(); err != nil || n != 1 {
		t.Fatalf("store Len = %d, %v; want 1", n, err)
	}
	b, ok, err := st.GetBytes(key)
	if err != nil || !ok || !bytes.Equal(b, first) {
		t.Fatal("store bytes differ from served bytes")
	}

	// Responses decode back into runner.Results.
	var res runner.Results
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatalf("response is not a runner.Results: %v", err)
	}
	if res.Sent == 0 {
		t.Fatal("decoded results carry no traffic")
	}
}

func TestRunValidationSurface(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)

	post := func(body, query string) (*http.Response, string) {
		resp, err := http.Post(ts.URL+"/v1/run"+query, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(readAll(t, resp))
	}

	// Malformed JSON.
	if resp, _ := post("{not json", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON → %d, want 400", resp.StatusCode)
	}
	// Unknown field: a typoed knob must not silently simulate something
	// else.
	if resp, body := post(`{"Hostz": 50}`, "?base=ecgrid"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field → %d (%s), want 400", resp.StatusCode, body)
	}
	// scenario.Validate as the 4xx surface: the CLI's exit(2) message is
	// the HTTP 400 message.
	resp, body := post(`{"Hosts": -1}`, "?base=ecgrid")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "scenario:") {
		t.Errorf("invalid config → %d (%s), want 400 with scenario error", resp.StatusCode, body)
	}
	// Unknown base protocol.
	if resp, _ := post("", "?base=ospf"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown base → %d, want 400", resp.StatusCode)
	}
	// Empty body, no base.
	if resp, _ := post("", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty request → %d, want 400", resp.StatusCode)
	}
	// Bad wait value.
	if resp, _ := post("", "?base=ecgrid&wait=soon"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad wait → %d, want 400", resp.StatusCode)
	}
}

func TestMaxHostsGuardrail(t *testing.T) {
	ts, _, _ := newTestServer(t, func(c *Config) { c.MaxHosts = 10 })
	resp := postRun(t, ts, smallCfg(1), "") // 8 hosts: allowed
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("within guardrail → %d", resp.StatusCode)
	}
	readAll(t, resp)

	big := smallCfg(2)
	big.Hosts = 50
	resp2 := postRun(t, ts, big, "")
	body := string(readAll(t, resp2))
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(body, "max-n") {
		t.Fatalf("beyond guardrail → %d (%s), want 400 mentioning max-n", resp2.StatusCode, body)
	}
}

// blockingRun is a RunFunc stand-in whose executions block until
// released, so tests can hold jobs in flight deterministically.
type blockingRun struct {
	release chan struct{}
	started chan string // receives each started job's tag
}

func newBlockingRun() *blockingRun {
	return &blockingRun{release: make(chan struct{}), started: make(chan string, 64)}
}

func (b *blockingRun) run(ctx context.Context, tag string, cfg scenario.Config) (*runner.Results, error) {
	b.started <- tag
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &runner.Results{Cfg: cfg, Sent: 1, Delivered: 1}, nil
}

func TestAsyncAcceptedAndPoll(t *testing.T) {
	br := newBlockingRun()
	ts, _, _ := newTestServer(t, func(c *Config) { c.Run = br.run })
	cfg := smallCfg(3)

	resp := postRun(t, ts, cfg, "?wait=0")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit → %d, want 202", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if loc == "" {
		t.Fatal("202 without Location")
	}
	readAll(t, resp)

	// While the job runs, the poll URL answers 202 and /v1/jobs lists it.
	<-br.started
	resp2, err := http.Get(ts.URL + loc)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("poll while running → %d, want 202", resp2.StatusCode)
	}
	readAll(t, resp2)

	jr, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs struct {
		Count int `json:"count"`
		Jobs  []struct {
			Key    string `json:"key"`
			Client string `json:"client"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(readAll(t, jr), &jobs); err != nil {
		t.Fatal(err)
	}
	if jobs.Count != 1 || len(jobs.Jobs) != 1 {
		t.Fatalf("jobs = %+v, want one in-flight job", jobs)
	}

	// Release; the poll URL converges to 200.
	close(br.release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp3, err := http.Get(ts.URL + loc)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp3)
		if resp3.StatusCode == http.StatusOK {
			var res runner.Results
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatalf("poll result decode: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("poll never converged; last status %d", resp3.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	br := newBlockingRun()
	ts, _, _ := newTestServer(t, func(c *Config) {
		c.Run = br.run
		c.QueueDepth = 2
		c.PerClient = 2
		c.Workers = 1
	})
	defer close(br.release)

	// Two distinct jobs fill the queue (async, so the requests return).
	for seed := int64(1); seed <= 2; seed++ {
		resp := postRun(t, ts, smallCfg(seed), "?wait=0&client=a")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d → %d, want 202", seed, resp.StatusCode)
		}
		readAll(t, resp)
	}
	// Third distinct job: queue full → 429 + Retry-After.
	resp := postRun(t, ts, smallCfg(3), "?wait=0&client=b")
	body := string(readAll(t, resp))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over queue → %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// But an identical re-submission of an in-flight config coalesces:
	// no queue slot needed, no 429.
	resp2 := postRun(t, ts, smallCfg(1), "?wait=0&client=b")
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("coalescing resubmit → %d, want 202", resp2.StatusCode)
	}
	readAll(t, resp2)
}

func TestPerClientFairness(t *testing.T) {
	br := newBlockingRun()
	ts, _, _ := newTestServer(t, func(c *Config) {
		c.Run = br.run
		c.QueueDepth = 8
		c.PerClient = 2
		c.Workers = 1
	})
	defer close(br.release)

	// Client a saturates its own allowance…
	for seed := int64(1); seed <= 2; seed++ {
		resp := postRun(t, ts, smallCfg(seed), "?wait=0&client=a")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("a's job %d → %d", seed, resp.StatusCode)
		}
		readAll(t, resp)
	}
	resp := postRun(t, ts, smallCfg(3), "?wait=0&client=a")
	body := string(readAll(t, resp))
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(body, "client") {
		t.Fatalf("a over per-client limit → %d (%s), want 429", resp.StatusCode, body)
	}
	// …while client b still gets in: the queue was not monopolized.
	resp2 := postRun(t, ts, smallCfg(4), "?wait=0&client=b")
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("b blocked by a's flood → %d, want 202", resp2.StatusCode)
	}
	readAll(t, resp2)
}

func TestResultEndpointErrors(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/result/not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key → %d, want 400", resp.StatusCode)
	}
	readAll(t, resp)

	resp2, err := http.Get(ts.URL + fmt.Sprintf("/v1/result/%064x", 1))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key → %d, want 404", resp2.StatusCode)
	}
	readAll(t, resp2)
}

func TestHealthzAndMetrics(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || string(readAll(t, resp)) != "ok\n" {
		t.Fatal("healthz not ok")
	}

	// Generate one miss and one hit, then read the counters back.
	readAll(t, postRun(t, ts, smallCfg(1), ""))
	readAll(t, postRun(t, ts, smallCfg(1), ""))

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Executed  int64 `json:"executed"`
		InFlight  int64 `json:"in_flight"`
		Queue     int64 `json:"queue_depth"`
		StoreLen  int64 `json:"store_entries"`
		Latencies struct {
			Run struct {
				Count uint64 `json:"count"`
			} `json:"run"`
		} `json:"latency"`
	}
	if err := json.Unmarshal(readAll(t, mr), &m); err != nil {
		t.Fatalf("metrics is not JSON: %v", err)
	}
	if m.Hits != 1 || m.Misses != 1 || m.Executed != 1 {
		t.Fatalf("metrics = %+v, want 1 hit / 1 miss / 1 executed", m)
	}
	if m.StoreLen != 1 {
		t.Fatalf("store_entries = %d, want 1", m.StoreLen)
	}
	if m.Latencies.Run.Count != 2 {
		t.Fatalf("run latency count = %d, want 2", m.Latencies.Run.Count)
	}
}

// genKey POSTs cfg to /v1/generate and returns the previewed content
// key.
func genKey(t *testing.T, ts *httptest.Server, cfg scenario.Config) string {
	t.Helper()
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var out struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(readAll(t, resp), &out); err != nil {
		t.Fatal(err)
	}
	return out.Key
}

// TestShardDefaultOverlay: a server started with Config.Shards runs
// shard-less configs on the sharded engine — same result bytes as a
// serial server, a self-consistent content key (previewed by
// /v1/generate), and the shard telemetry surfaced on /metrics.
func TestShardDefaultOverlay(t *testing.T) {
	sharded, _, _ := newTestServer(t, func(c *Config) { c.Shards = 2 })
	serial, _, _ := newTestServer(t, nil)
	cfg := smallCfg(1)

	// The overlay is part of the key: /v1/generate on the sharded server
	// previews the key of the config it will actually run.
	want := cfg
	want.Shards = 2
	if got := genKey(t, sharded, cfg); got != batch.Key(want) {
		t.Fatalf("sharded server key = %s, want the Shards=2 key %s", got, batch.Key(want))
	}
	if genKey(t, sharded, cfg) == genKey(t, serial, cfg) {
		t.Fatal("sharded and serial servers previewed the same key")
	}
	// A config that picks its own count keeps it.
	own := smallCfg(1)
	own.Shards = 3
	if got := genKey(t, sharded, own); got != batch.Key(own) {
		t.Fatalf("explicit Shards=3 key = %s, want %s", got, batch.Key(own))
	}
	// A grid too narrow for the default falls back to the serial engine
	// instead of rejecting the request: 500 m / 100 m cells = 5 columns.
	narrow := smallCfg(1)
	narrow.AreaSize = 500
	wide, _, _ := newTestServer(t, func(c *Config) { c.Shards = 8 })
	if got := genKey(t, wide, narrow); got != batch.Key(narrow) {
		t.Fatalf("narrow-grid key = %s, want the serial key %s", got, batch.Key(narrow))
	}

	// Byte-identity over HTTP: apart from the Shards knob echoed in the
	// result's Cfg, both engines serve identical results.
	rs := postRun(t, sharded, cfg, "")
	if rs.StatusCode != http.StatusOK {
		t.Fatalf("sharded run status %d: %s", rs.StatusCode, readAll(t, rs))
	}
	rr := postRun(t, serial, cfg, "")
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("serial run status %d", rr.StatusCode)
	}
	var fromSharded, fromSerial runner.Results
	if err := json.Unmarshal(readAll(t, rs), &fromSharded); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readAll(t, rr), &fromSerial); err != nil {
		t.Fatal(err)
	}
	if fromSharded.Cfg.Shards != 2 {
		t.Fatalf("sharded server echoed Cfg.Shards = %d, want 2", fromSharded.Cfg.Shards)
	}
	fromSharded.Cfg.Shards = 0
	a, err := json.Marshal(fromSharded)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(fromSerial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("sharded server's results differ from the serial server's")
	}

	// The sharded run fed the /metrics telemetry: both counters render
	// (boundary events may legitimately be zero on a short run).
	mr, err := http.Get(sharded.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(readAll(t, mr), &m); err != nil {
		t.Fatalf("metrics is not JSON: %v", err)
	}
	for _, key := range []string{"shard_boundary_events", "shard_stall_seconds"} {
		raw, ok := m[key]
		if !ok {
			t.Fatalf("metrics missing %s", key)
		}
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil || v < 0 {
			t.Fatalf("%s = %s, want a non-negative number", key, raw)
		}
	}
}

// TestNewRejectsNegativeShards: the guardrail behind cmd/simd's exit(2).
func TestNewRejectsNegativeShards(t *testing.T) {
	st, err := store.Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Store: st, Shards: -1}); err == nil {
		t.Fatal("New accepted Config.Shards = -1")
	}
}

// TestRxCacheDefaultOverlay: a server started with Config.NoRxCache
// runs incoming configs on the uncached reference scan — a distinct,
// self-consistent content key (so its store entries never alias a
// cached server's) and, because the cache is byte-identical, the same
// result payload apart from the echoed knob.
func TestRxCacheDefaultOverlay(t *testing.T) {
	reference, _, _ := newTestServer(t, func(c *Config) { c.NoRxCache = true })
	cached, _, _ := newTestServer(t, nil)
	cfg := smallCfg(1)

	// The overlay is part of the key: /v1/generate previews the config
	// the reference server will actually run.
	want := cfg
	want.Radio.NoRxCache = true
	if got := genKey(t, reference, cfg); got != batch.Key(want) {
		t.Fatalf("reference server key = %s, want the NoRxCache key %s", got, batch.Key(want))
	}
	if genKey(t, reference, cfg) == genKey(t, cached, cfg) {
		t.Fatal("reference and cached servers previewed the same key")
	}
	// A config that disables the cache itself lands on the same key on
	// both servers: the overlay is idempotent, not a separate dimension.
	own := smallCfg(1)
	own.Radio.NoRxCache = true
	if got := genKey(t, cached, own); got != batch.Key(own) {
		t.Fatalf("explicit NoRxCache key = %s, want %s", got, batch.Key(own))
	}

	// Byte-identity over HTTP: apart from the NoRxCache knob echoed in
	// the result's Cfg, both servers serve identical results.
	rs := postRun(t, reference, cfg, "")
	if rs.StatusCode != http.StatusOK {
		t.Fatalf("reference run status %d: %s", rs.StatusCode, readAll(t, rs))
	}
	rr := postRun(t, cached, cfg, "")
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("cached run status %d", rr.StatusCode)
	}
	var fromRef, fromCached runner.Results
	if err := json.Unmarshal(readAll(t, rs), &fromRef); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readAll(t, rr), &fromCached); err != nil {
		t.Fatal(err)
	}
	if !fromRef.Cfg.Radio.NoRxCache {
		t.Fatal("reference server echoed Cfg.Radio.NoRxCache = false, want true")
	}
	fromRef.Cfg.Radio.NoRxCache = false
	a, err := json.Marshal(fromRef)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(fromCached)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("reference server's results differ from the cached server's")
	}
}
