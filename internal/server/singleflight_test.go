package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecgrid/internal/batch"
	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
	"ecgrid/internal/store"
)

// TestSingleflightAndRestart is the acceptance proof for the serving
// layer:
//
//  1. N identical concurrent POST /v1/run requests against a COLD store
//     execute the simulation exactly once, and every response is
//     byte-identical;
//  2. a "restarted" daemon (fresh Server and Store over the same
//     directory) serves the same key from disk without recomputing.
//
// The run function is the real store-backed batch.Executor wrapped in
// an execution counter plus a gate: the gate holds the single execution
// open until the server's own metrics confirm the other N−1 requests
// have coalesced onto it, making the "all N arrived before completion"
// premise deterministic instead of timing-dependent.
func TestSingleflightAndRestart(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	cfg := scenario.Default(scenario.ECGRID)
	cfg.Hosts = 10
	cfg.Flows = 2
	cfg.Duration = 15
	cfg.Seed = 42
	key := batch.Key(cfg)

	var executions atomic.Int64
	gate := make(chan struct{})

	st, err := store.Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	exec := batch.NewExecutor(context.Background(), batch.Options{Workers: 2, Store: st})
	counted := func(ctx context.Context, tag string, c scenario.Config) (*runner.Results, error) {
		executions.Add(1)
		<-gate
		return exec.RunCtx(ctx, tag, c)
	}
	srv, err := New(Config{Store: st, Workers: 2, QueueDepth: 8, Run: counted})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()

	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	responses := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			statuses[i] = resp.StatusCode
			responses[i] = readAll(t, resp)
		}(i)
	}

	// Hold the one execution open until all N requests are accounted
	// for: 1 miss (the job creator) + N−1 coalesced joiners.
	deadline := time.Now().Add(10 * time.Second)
	for srv.met.misses.Value()+srv.met.coalesced.Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("requests never coalesced: misses=%d coalesced=%d",
				srv.met.misses.Value(), srv.met.coalesced.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.met.misses.Value(); got != 1 {
		t.Fatalf("misses = %d, want 1 (exactly one admitted job)", got)
	}
	close(gate)
	wg.Wait()

	// Exactly one simulation ran, and all N responses are 200 and
	// byte-identical.
	if got := executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want exactly 1", got)
	}
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		if !bytes.Equal(responses[i], responses[0]) {
			t.Fatalf("request %d: response differs from request 0", i)
		}
	}
	if len(responses[0]) == 0 {
		t.Fatal("empty responses")
	}

	// "Restart": a fresh store handle (cold LRU) and a fresh server
	// over the same directory. The same request must be a pure disk
	// hit: zero executions, identical bytes.
	ts.Close()
	srv.Close()

	var executions2 atomic.Int64
	st2, err := store.Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	exec2 := batch.NewExecutor(context.Background(), batch.Options{Workers: 2, Store: st2})
	counted2 := func(ctx context.Context, tag string, c scenario.Config) (*runner.Results, error) {
		executions2.Add(1)
		return exec2.RunCtx(ctx, tag, c)
	}
	srv2, err := New(Config{Store: st2, Workers: 2, QueueDepth: 8, Run: counted2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer srv2.Close()
	defer ts2.Close()

	resp, err := http.Post(ts2.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("post-restart X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(got, responses[0]) {
		t.Fatal("post-restart response differs from the original computation")
	}
	if resp.Header.Get("X-Content-Key") != key {
		t.Fatalf("served key %q, want %q", resp.Header.Get("X-Content-Key"), key)
	}
	if executions2.Load() != 0 {
		t.Fatalf("restart recomputed the result (%d executions)", executions2.Load())
	}
}
