package scengen

import (
	"math"

	"ecgrid/internal/geom"
	"ecgrid/internal/sim"
)

// NewPlacer expands a deployment into a placement function: Placer(i)
// is host i's starting position. Every random draw comes from the
// dedicated "scengen.deploy" stream, so switching deployments cannot
// shift mobility, flow, or channel randomness, and the default
// placement stream stays untouched for configs without a spec.
//
// Cluster centers (and the host→cluster assignment) are drawn eagerly
// at construction; per-host draws then happen in call order. Callers
// must therefore invoke the placer for i = 0, 1, 2, … exactly once
// each, which is how the runner constructs hosts.
func NewPlacer(d *Deployment, area geom.Rect, hosts int, rng *sim.RNG) func(i int) geom.Point {
	src := rng.Stream(sim.StreamScengenDeploy)
	uniform := func(int) geom.Point {
		return geom.Point{
			X: area.Min.X + src.Float64()*area.Width(),
			Y: area.Min.Y + src.Float64()*area.Height(),
		}
	}
	switch d.Kind {
	case DeployClustered:
		centers := make([]geom.Point, d.Clusters)
		for i := range centers {
			centers[i] = uniform(0)
		}
		// Spread hosts round-robin over the hotspots: cluster sizes
		// differ by at most one, so density scales with Clusters alone.
		return func(i int) geom.Point {
			c := centers[i%len(centers)]
			return area.Clamp(geom.Point{
				X: c.X + src.NormFloat64()*d.StdDevM,
				Y: c.Y + src.NormFloat64()*d.StdDevM,
			})
		}
	case DeployGrid:
		cols := int(math.Ceil(math.Sqrt(float64(hosts))))
		rows := (hosts + cols - 1) / cols
		dx := area.Width() / float64(cols)
		dy := area.Height() / float64(rows)
		return func(i int) geom.Point {
			p := geom.Point{
				X: area.Min.X + (float64(i%cols)+0.5)*dx,
				Y: area.Min.Y + (float64(i/cols)+0.5)*dy,
			}
			if d.JitterM > 0 {
				p.X += (2*src.Float64() - 1) * d.JitterM
				p.Y += (2*src.Float64() - 1) * d.JitterM
			}
			return area.Clamp(p)
		}
	default: // DeployUniform (Validate rejects anything else)
		return uniform
	}
}
