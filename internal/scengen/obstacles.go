package scengen

import "ecgrid/internal/geom"

// ObstacleMap answers propagation queries for a set of attenuating
// rectangles. It is pure geometry — stateless and deterministic — so
// installing one in the channel's delivery path cannot disturb any RNG
// stream; the same two endpoints always see the same effective range.
type ObstacleMap struct {
	obs []Obstacle
}

// NewObstacleMap builds the map from a validated propagation spec.
func NewObstacleMap(p *Propagation) *ObstacleMap {
	return &ObstacleMap{obs: p.Obstacles}
}

// EffectiveRange shrinks base by (1 - Atten) for every obstacle the
// from→to sight line crosses. An Atten-1 obstacle zeroes the range
// (full shadowing); overlapping obstacles compound multiplicatively.
func (m *ObstacleMap) EffectiveRange(base float64, from, to geom.Point) float64 {
	r := base
	for i := range m.obs {
		o := &m.obs[i]
		if segmentCrossesRect(from, to, o) {
			r *= 1 - o.Atten
			if r == 0 {
				return 0
			}
		}
	}
	return r
}

// Deliverable reports whether a transmission from→to survives the map:
// the receiver must sit within the obstacle-shrunk range.
func (m *ObstacleMap) Deliverable(baseRange float64, from, to geom.Point) bool {
	eff := m.EffectiveRange(baseRange, from, to)
	return from.Dist2(to) <= eff*eff
}

// segmentCrossesRect is the Cohen–Sutherland-style slab test: clip the
// parameter interval of the segment against the rectangle's x and y
// slabs and see whether a sub-interval survives. Touching the boundary
// counts as crossing (a grazing sight line is still shadowed).
func segmentCrossesRect(a, b geom.Point, o *Obstacle) bool {
	t0, t1 := 0.0, 1.0
	clip := func(p, q, lo, hi float64) bool {
		d := q - p
		if d == 0 {
			return p >= lo && p <= hi
		}
		u0 := (lo - p) / d
		u1 := (hi - p) / d
		if u0 > u1 {
			u0, u1 = u1, u0
		}
		if u0 > t0 {
			t0 = u0
		}
		if u1 < t1 {
			t1 = u1
		}
		return t0 <= t1
	}
	return clip(a.X, b.X, o.MinX, o.MaxX) && clip(a.Y, b.Y, o.MinY, o.MaxY)
}
