package scengen

import (
	"math"
	"testing"

	"ecgrid/internal/geom"
	"ecgrid/internal/sim"
)

func area1000() geom.Rect {
	return geom.NewRect(geom.Point{}, geom.Point{X: 1000, Y: 1000})
}

func expand(d *Deployment, hosts int, seed int64) []geom.Point {
	place := NewPlacer(d, area1000(), hosts, sim.NewRNG(seed))
	pts := make([]geom.Point, hosts)
	for i := range pts {
		pts[i] = place(i)
	}
	return pts
}

// TestPlacerDeterministic: same spec + same seed → same placements,
// for every kind.
func TestPlacerDeterministic(t *testing.T) {
	for _, d := range []*Deployment{
		{Kind: DeployUniform},
		{Kind: DeployClustered, Clusters: 5, StdDevM: 50},
		{Kind: DeployGrid, JitterM: 15},
	} {
		a, b := expand(d, 200, 42), expand(d, 200, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: host %d placed at %v then %v", d.Kind, i, a[i], b[i])
			}
		}
	}
}

// TestPlacerInsideArea: every kind clamps into the region.
func TestPlacerInsideArea(t *testing.T) {
	area := area1000()
	for _, d := range []*Deployment{
		{Kind: DeployUniform},
		{Kind: DeployClustered, Clusters: 3, StdDevM: 400}, // wide scatter: clamping must engage
		{Kind: DeployGrid, JitterM: 80},
	} {
		for i, p := range expand(d, 300, 7) {
			if !area.Contains(p) {
				t.Fatalf("%s: host %d placed outside the area at %v", d.Kind, i, p)
			}
		}
	}
}

// TestClusteredIsClustered: with tight scatter, hosts concentrate —
// the mean distance to the nearest cluster center is on the order of
// the scatter, far below the ~hundreds of meters a uniform draw gives.
func TestClusteredIsClustered(t *testing.T) {
	const stddev = 30.0
	d := &Deployment{Kind: DeployClustered, Clusters: 4, StdDevM: stddev}
	pts := expand(d, 400, 3)
	// Recover the centers from the same stream: first draws are the
	// centers themselves.
	centers := expand(&Deployment{Kind: DeployUniform}, 4, 3)
	sum := 0.0
	for _, p := range pts {
		best := math.Inf(1)
		for _, c := range centers {
			if dd := p.Dist(c); dd < best {
				best = dd
			}
		}
		sum += best
	}
	if mean := sum / float64(len(pts)); mean > 4*stddev {
		t.Fatalf("mean distance to nearest hotspot %v m: not clustered", mean)
	}
}

// TestGridCoversCells: jitter-free grid placement puts one host in
// each √N×√N lattice cell — the dense best case for grid routing.
func TestGridCoversCells(t *testing.T) {
	const hosts = 100 // 10×10 lattice over 1000 m → 100 m cells
	pts := expand(&Deployment{Kind: DeployGrid}, hosts, 1)
	seen := make(map[[2]int]bool)
	for _, p := range pts {
		seen[[2]int{int(p.X / 100), int(p.Y / 100)}] = true
	}
	if len(seen) != hosts {
		t.Fatalf("%d hosts occupy only %d distinct 100 m cells", hosts, len(seen))
	}
}

// TestUniformSpreads: a sanity bound that the uniform kind is not
// degenerate — all four quadrants receive hosts.
func TestUniformSpreads(t *testing.T) {
	quad := make(map[[2]bool]int)
	for _, p := range expand(&Deployment{Kind: DeployUniform}, 200, 9) {
		quad[[2]bool{p.X > 500, p.Y > 500}]++
	}
	if len(quad) != 4 {
		t.Fatalf("uniform placement missed quadrants: %v", quad)
	}
}
