package scengen

import (
	"encoding/json"
	"math"
	"testing"
)

func validSpec() *Spec {
	return &Spec{
		Deployment:  &Deployment{Kind: DeployClustered, Clusters: 4, StdDevM: 60},
		Mobility:    &Mobility{Kind: MobilityManhattan, BlockM: 100},
		Traffic:     &Traffic{Kind: TrafficOnOff, MeanOnS: 5, MeanOffS: 10},
		Propagation: &Propagation{Obstacles: []Obstacle{{MinX: 100, MinY: 100, MaxX: 300, MaxY: 200, Atten: 0.5}}},
	}
}

func TestSpecValidateAccepts(t *testing.T) {
	if err := validSpec().Validate(100, 1000); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(100, 1000); err != nil {
		t.Fatalf("nil spec rejected: %v", err)
	}
	group := &Spec{Mobility: &Mobility{Kind: MobilityGroup, GroupSize: 5, RadiusM: 80}}
	if err := group.Validate(100, 1000); err != nil {
		t.Fatalf("group spec rejected: %v", err)
	}
	rr := &Spec{Traffic: &Traffic{Kind: TrafficReqResp, RespBytes: 1024, RespDelayS: 0.1}}
	if err := rr.Validate(100, 1000); err != nil {
		t.Fatalf("reqresp spec rejected: %v", err)
	}
	grid := &Spec{Deployment: &Deployment{Kind: DeployGrid, JitterM: 10}}
	if err := grid.Validate(100, 1000); err != nil {
		t.Fatalf("grid spec rejected: %v", err)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	mutations := map[string]func(*Spec){
		"unknown deployment": func(s *Spec) { s.Deployment.Kind = "bogus" },
		"zero clusters":      func(s *Spec) { s.Deployment.Clusters = 0 },
		"clusters > hosts":   func(s *Spec) { s.Deployment.Clusters = 101 },
		"zero scatter":       func(s *Spec) { s.Deployment.StdDevM = 0 },
		"NaN scatter":        func(s *Spec) { s.Deployment.StdDevM = math.NaN() },
		"negative jitter":    func(s *Spec) { s.Deployment = &Deployment{Kind: DeployGrid, JitterM: -1} },
		"unknown mobility":   func(s *Spec) { s.Mobility.Kind = "teleport" },
		"zero block":         func(s *Spec) { s.Mobility.BlockM = 0 },
		"block > area":       func(s *Spec) { s.Mobility.BlockM = 2000 },
		"NaN block":          func(s *Spec) { s.Mobility.BlockM = math.NaN() },
		"zero group size":    func(s *Spec) { s.Mobility = &Mobility{Kind: MobilityGroup, RadiusM: 50} },
		"zero group radius":  func(s *Spec) { s.Mobility = &Mobility{Kind: MobilityGroup, GroupSize: 5} },
		"radius > area":      func(s *Spec) { s.Mobility = &Mobility{Kind: MobilityGroup, GroupSize: 5, RadiusM: 600} },
		"negative local speed": func(s *Spec) {
			s.Mobility = &Mobility{Kind: MobilityGroup, GroupSize: 5, RadiusM: 50, LocalSpeedMS: -1}
		},
		"unknown traffic":     func(s *Spec) { s.Traffic.Kind = "poisson" },
		"zero on mean":        func(s *Spec) { s.Traffic.MeanOnS = 0 },
		"zero off mean":       func(s *Spec) { s.Traffic.MeanOffS = 0 },
		"Inf on mean":         func(s *Spec) { s.Traffic.MeanOnS = math.Inf(1) },
		"negative resp bytes": func(s *Spec) { s.Traffic = &Traffic{Kind: TrafficReqResp, RespBytes: -1} },
		"negative resp delay": func(s *Spec) { s.Traffic = &Traffic{Kind: TrafficReqResp, RespDelayS: -1} },
		"no obstacles":        func(s *Spec) { s.Propagation.Obstacles = nil },
		"inverted obstacle":   func(s *Spec) { s.Propagation.Obstacles[0].MaxX = 50 },
		"NaN obstacle":        func(s *Spec) { s.Propagation.Obstacles[0].MinY = math.NaN() },
		"zero attenuation":    func(s *Spec) { s.Propagation.Obstacles[0].Atten = 0 },
		"attenuation > 1":     func(s *Spec) { s.Propagation.Obstacles[0].Atten = 1.5 },
	}
	for name, mutate := range mutations {
		s := validSpec()
		mutate(s)
		if err := s.Validate(100, 1000); err == nil {
			t.Errorf("%s: Validate accepted it", name)
		}
	}
}

func TestSpecEmpty(t *testing.T) {
	var nilSpec *Spec
	if !nilSpec.Empty() || !(&Spec{}).Empty() {
		t.Error("nil/zero spec not Empty")
	}
	if (&Spec{Traffic: &Traffic{}}).Empty() {
		t.Error("spec with an axis reported Empty")
	}
}

// TestSpecJSONRoundTrip: the spec is part of the canonical config
// encoding, so encode→decode→encode must be stable.
func TestSpecJSONRoundTrip(t *testing.T) {
	a, err := json.Marshal(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	var s Spec
	if err := json.Unmarshal(a, &s); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("round trip changed the encoding:\n%s\n%s", a, b)
	}
}
