package scengen

import (
	"fmt"

	"ecgrid/internal/geom"
	"ecgrid/internal/mobility"
	"ecgrid/internal/sim"
)

// MobilityFactory expands a mobility axis into per-host models. It
// exists (rather than a pure function) because group mobility has
// shared state: members of one group must attach to the same reference
// trajectory, which the factory creates on first touch and caches.
//
// Stream discipline: host i's street motion draws from
// "scengen.manhattan.<i>"; group g's reference from
// "scengen.group.ref.<g>" and member i's local motion from
// "scengen.group.m.<i>". Per-entity streams keep the expansion
// insensitive to construction order beyond the factory's own caching.
type MobilityFactory struct {
	spec     *Mobility
	area     geom.Rect
	maxSpeed float64
	pause    float64
	rng      *sim.RNG
	refs     map[int]*mobility.GroupReference
}

// NewMobilityFactory prepares expansion of a validated mobility spec.
func NewMobilityFactory(spec *Mobility, area geom.Rect, maxSpeed, pause float64, rng *sim.RNG) *MobilityFactory {
	return &MobilityFactory{
		spec: spec, area: area, maxSpeed: maxSpeed, pause: pause, rng: rng,
		refs: make(map[int]*mobility.GroupReference),
	}
}

// Model builds host i's movement model starting at start.
func (f *MobilityFactory) Model(i int, start geom.Point) mobility.Model {
	switch f.spec.Kind {
	case MobilityManhattan:
		return mobility.NewManhattan(f.area, start, f.spec.BlockM, f.maxSpeed, f.pause,
			f.rng.Stream(fmt.Sprintf(sim.StreamScengenManhattan, i)))
	case MobilityGroup:
		g := i / f.spec.GroupSize
		ref, ok := f.refs[g]
		if !ok {
			// The group's reference starts at its first member's
			// placement (clamped into the inset by the constructor) and
			// moves at the configured top speed.
			ref = mobility.NewGroupReference(f.area, start, f.spec.RadiusM, f.maxSpeed, f.pause,
				f.rng.Stream(fmt.Sprintf(sim.StreamScengenGroup, fmt.Sprintf("ref.%d", g))))
			f.refs[g] = ref
		}
		local := f.spec.LocalSpeedMS
		if local == 0 {
			local = f.maxSpeed / 2
		}
		return mobility.NewGroupMember(ref, f.spec.RadiusM, local, f.pause,
			f.rng.Stream(fmt.Sprintf(sim.StreamScengenGroup, fmt.Sprintf("m.%d", i))))
	default:
		panic(fmt.Sprintf("scengen: unknown mobility kind %q", f.spec.Kind))
	}
}
