// Package scengen is the composable scenario generator: a declarative,
// JSON-serializable Spec that expands into concrete placements,
// mobility models, traffic shapes, and propagation maps on dedicated
// RNG streams. A Spec rides inside scenario.Config the same way a
// faults.Plan does — `json:",omitempty"`, so configs without one keep
// their canonical encoding and batch keys — and the same spec plus the
// same seed always expands to the same run.
//
// The package deliberately knows nothing about scenario or runner: it
// turns spec fields into geom/mobility-level objects, and the runner
// does the final assembly. That keeps the import graph acyclic
// (scenario → scengen, runner → both).
package scengen

import (
	"errors"
	"fmt"
	"math"
)

// Deployment kinds.
const (
	// DeployUniform places hosts i.i.d. uniform over the area — the
	// paper's default, but drawn on the scengen.deploy stream.
	DeployUniform = "uniform"
	// DeployClustered places hosts around a few hotspot centers with
	// Gaussian scatter: dense neighborhoods, sparse in between.
	DeployClustered = "clustered"
	// DeployGrid snaps hosts to a √N×√N lattice with optional jitter —
	// the adversarial best case for grid routing (every cell occupied).
	DeployGrid = "grid"
)

// Mobility kinds.
const (
	// MobilityManhattan constrains motion to a city-block street
	// lattice (axis-parallel segments, turns at intersections).
	MobilityManhattan = "manhattan"
	// MobilityGroup is reference-point group mobility: hosts move in
	// cohesive groups around shared waypoint references.
	MobilityGroup = "group"
)

// Traffic kinds.
const (
	// TrafficOnOff replaces each CBR flow with a bursty on/off source
	// at the same rate while on.
	TrafficOnOff = "onoff"
	// TrafficReqResp replaces each CBR flow with a request/response
	// pair (responses travel on their own flow ids).
	TrafficReqResp = "reqresp"
)

// Spec is the declarative generator input. Every axis is optional and
// nil means "whatever the base config says": a Spec with only a
// Deployment changes placement and nothing else.
type Spec struct {
	Deployment  *Deployment  `json:"deployment,omitempty"`
	Mobility    *Mobility    `json:"mobility,omitempty"`
	Traffic     *Traffic     `json:"traffic,omitempty"`
	Propagation *Propagation `json:"propagation,omitempty"`
}

// Deployment selects and parameterizes the placement axis.
type Deployment struct {
	Kind string `json:"kind"`
	// Clusters and StdDevM parameterize DeployClustered: the number of
	// hotspot centers and the Gaussian scatter around each.
	Clusters int     `json:"clusters,omitempty"`
	StdDevM  float64 `json:"stddev_m,omitempty"`
	// JitterM perturbs DeployGrid lattice points uniformly in
	// [-jitter, jitter] per axis (0 = exact lattice).
	JitterM float64 `json:"jitter_m,omitempty"`
}

// Mobility selects and parameterizes the movement axis for every host.
type Mobility struct {
	Kind string `json:"kind"`
	// BlockM is the Manhattan street-block side in meters.
	BlockM float64 `json:"block_m,omitempty"`
	// GroupSize, RadiusM, and LocalSpeedMS parameterize group mobility:
	// hosts 0..size-1 form group 0, and so on; members roam within
	// RadiusM of their reference at LocalSpeedMS (default: half the
	// config's max speed).
	GroupSize    int     `json:"group_size,omitempty"`
	RadiusM      float64 `json:"radius_m,omitempty"`
	LocalSpeedMS float64 `json:"local_speed_ms,omitempty"`
}

// Traffic reshapes each configured flow; count, rate, packet size, and
// endpoint selection stay with the base config.
type Traffic struct {
	Kind string `json:"kind"`
	// MeanOnS / MeanOffS are the on/off burst and silence means.
	MeanOnS  float64 `json:"mean_on_s,omitempty"`
	MeanOffS float64 `json:"mean_off_s,omitempty"`
	// RespBytes and RespDelayS shape request/response flows: response
	// size (default: the request size) and service delay.
	RespBytes  int     `json:"resp_bytes,omitempty"`
	RespDelayS float64 `json:"resp_delay_s,omitempty"`
}

// Propagation adds rectangular obstacles to the delivery path.
type Propagation struct {
	Obstacles []Obstacle `json:"obstacles"`
}

// Obstacle is an axis-aligned attenuating rectangle. A transmission
// whose line of sight crosses it has its effective range multiplied by
// (1 - Atten); Atten 1 blocks completely. Attenuation is a
// deterministic function of geometry — no RNG draw — so the obstacle
// map cannot perturb any other stream.
type Obstacle struct {
	MinX  float64 `json:"min_x"`
	MinY  float64 `json:"min_y"`
	MaxX  float64 `json:"max_x"`
	MaxY  float64 `json:"max_y"`
	Atten float64 `json:"atten"`
}

// Empty reports whether the spec changes nothing.
func (s *Spec) Empty() bool {
	return s == nil ||
		(s.Deployment == nil && s.Mobility == nil && s.Traffic == nil && s.Propagation == nil)
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// Validate checks the spec against the run it will expand into: hosts
// is the total host count, areaSize the square region side.
func (s *Spec) Validate(hosts int, areaSize float64) error {
	if s == nil {
		return nil
	}
	if d := s.Deployment; d != nil {
		switch d.Kind {
		case DeployUniform:
		case DeployClustered:
			if d.Clusters <= 0 {
				return errors.New("scengen: clustered deployment needs at least one cluster")
			}
			if d.Clusters > hosts {
				return fmt.Errorf("scengen: %d clusters for %d hosts", d.Clusters, hosts)
			}
			if d.StdDevM <= 0 || bad(d.StdDevM) {
				return errors.New("scengen: clustered deployment needs a positive scatter")
			}
		case DeployGrid:
			if d.JitterM < 0 || bad(d.JitterM) {
				return errors.New("scengen: negative grid jitter")
			}
		default:
			return fmt.Errorf("scengen: unknown deployment kind %q", d.Kind)
		}
	}
	if m := s.Mobility; m != nil {
		switch m.Kind {
		case MobilityManhattan:
			if m.BlockM <= 0 || bad(m.BlockM) {
				return errors.New("scengen: manhattan mobility needs a positive block size")
			}
			if m.BlockM > areaSize {
				return errors.New("scengen: manhattan block larger than the area")
			}
		case MobilityGroup:
			if m.GroupSize <= 0 {
				return errors.New("scengen: group mobility needs a positive group size")
			}
			if m.RadiusM <= 0 || bad(m.RadiusM) {
				return errors.New("scengen: group mobility needs a positive radius")
			}
			if 2*m.RadiusM >= areaSize {
				return errors.New("scengen: group radius too large for the area")
			}
			if m.LocalSpeedMS < 0 || bad(m.LocalSpeedMS) {
				return errors.New("scengen: negative group local speed")
			}
		default:
			return fmt.Errorf("scengen: unknown mobility kind %q", m.Kind)
		}
	}
	if t := s.Traffic; t != nil {
		switch t.Kind {
		case TrafficOnOff:
			if t.MeanOnS <= 0 || t.MeanOffS <= 0 || bad(t.MeanOnS) || bad(t.MeanOffS) {
				return errors.New("scengen: on/off traffic needs positive burst and silence means")
			}
		case TrafficReqResp:
			if t.RespBytes < 0 {
				return errors.New("scengen: negative response size")
			}
			if t.RespDelayS < 0 || bad(t.RespDelayS) {
				return errors.New("scengen: negative response delay")
			}
		default:
			return fmt.Errorf("scengen: unknown traffic kind %q", t.Kind)
		}
	}
	if p := s.Propagation; p != nil {
		if len(p.Obstacles) == 0 {
			return errors.New("scengen: propagation map without obstacles")
		}
		for i, o := range p.Obstacles {
			if bad(o.MinX) || bad(o.MinY) || bad(o.MaxX) || bad(o.MaxY) || bad(o.Atten) {
				return fmt.Errorf("scengen: obstacle %d has non-finite geometry", i)
			}
			if o.MinX >= o.MaxX || o.MinY >= o.MaxY {
				return fmt.Errorf("scengen: obstacle %d is degenerate", i)
			}
			if o.Atten <= 0 || o.Atten > 1 {
				return fmt.Errorf("scengen: obstacle %d attenuation %v outside (0, 1]", i, o.Atten)
			}
		}
	}
	return nil
}
