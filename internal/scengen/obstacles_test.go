package scengen

import (
	"testing"

	"ecgrid/internal/geom"
)

func wall() *ObstacleMap {
	// A vertical wall from (400,0)–(420,800), half-attenuating.
	return NewObstacleMap(&Propagation{Obstacles: []Obstacle{
		{MinX: 400, MinY: 0, MaxX: 420, MaxY: 800, Atten: 0.5},
	}})
}

func TestEffectiveRangeThroughWall(t *testing.T) {
	m := wall()
	from, to := geom.Point{X: 300, Y: 100}, geom.Point{X: 500, Y: 100}
	if got := m.EffectiveRange(250, from, to); got != 125 {
		t.Fatalf("range through the wall = %v, want 125", got)
	}
	// Around the wall: line of sight above its top edge.
	from, to = geom.Point{X: 300, Y: 900}, geom.Point{X: 500, Y: 900}
	if got := m.EffectiveRange(250, from, to); got != 250 {
		t.Fatalf("range around the wall = %v, want 250", got)
	}
}

func TestDeliverable(t *testing.T) {
	m := wall()
	from := geom.Point{X: 300, Y: 100}
	// 200 m through the wall: beyond the shrunk 125 m range.
	if m.Deliverable(250, from, geom.Point{X: 500, Y: 100}) {
		t.Fatal("delivery through the wall beyond the attenuated range")
	}
	// 110 m through the wall: still within 125 m.
	if !m.Deliverable(250, from, geom.Point{X: 410, Y: 100}) {
		t.Fatal("short hop through the wall rejected")
	}
	// 200 m with clear line of sight.
	if !m.Deliverable(250, from, geom.Point{X: 100, Y: 100}) {
		t.Fatal("unobstructed delivery rejected")
	}
}

func TestFullBlockZeroesRange(t *testing.T) {
	m := NewObstacleMap(&Propagation{Obstacles: []Obstacle{
		{MinX: 400, MinY: 0, MaxX: 420, MaxY: 1000, Atten: 1},
	}})
	if got := m.EffectiveRange(250, geom.Point{X: 0, Y: 1}, geom.Point{X: 1000, Y: 1}); got != 0 {
		t.Fatalf("full-block obstacle left range %v", got)
	}
	if m.Deliverable(250, geom.Point{X: 390, Y: 500}, geom.Point{X: 430, Y: 500}) {
		t.Fatal("delivery across a full-block obstacle")
	}
}

func TestOverlappingObstaclesCompound(t *testing.T) {
	m := NewObstacleMap(&Propagation{Obstacles: []Obstacle{
		{MinX: 400, MinY: 0, MaxX: 420, MaxY: 1000, Atten: 0.5},
		{MinX: 600, MinY: 0, MaxX: 620, MaxY: 1000, Atten: 0.5},
	}})
	if got := m.EffectiveRange(400, geom.Point{X: 300, Y: 5}, geom.Point{X: 700, Y: 5}); got != 100 {
		t.Fatalf("two half-walls leave range %v, want 100", got)
	}
}

func TestSegmentCrossings(t *testing.T) {
	o := &Obstacle{MinX: 100, MinY: 100, MaxX: 200, MaxY: 200}
	cases := []struct {
		name string
		a, b geom.Point
		want bool
	}{
		{"through", geom.Point{X: 50, Y: 150}, geom.Point{X: 250, Y: 150}, true},
		{"diagonal corner cut", geom.Point{X: 90, Y: 120}, geom.Point{X: 120, Y: 90}, true},
		{"miss above", geom.Point{X: 50, Y: 250}, geom.Point{X: 250, Y: 250}, false},
		{"miss beside", geom.Point{X: 250, Y: 50}, geom.Point{X: 250, Y: 250}, false},
		{"stops short", geom.Point{X: 0, Y: 150}, geom.Point{X: 50, Y: 150}, false},
		{"endpoint inside", geom.Point{X: 150, Y: 150}, geom.Point{X: 400, Y: 150}, true},
		{"both inside", geom.Point{X: 120, Y: 120}, geom.Point{X: 180, Y: 180}, true},
		{"grazes edge", geom.Point{X: 0, Y: 100}, geom.Point{X: 300, Y: 100}, true},
		{"degenerate outside", geom.Point{X: 50, Y: 50}, geom.Point{X: 50, Y: 50}, false},
		{"degenerate inside", geom.Point{X: 150, Y: 150}, geom.Point{X: 150, Y: 150}, true},
	}
	for _, c := range cases {
		if got := segmentCrossesRect(c.a, c.b, o); got != c.want {
			t.Errorf("%s: segmentCrossesRect = %v, want %v", c.name, got, c.want)
		}
	}
}
