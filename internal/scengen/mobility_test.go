package scengen

import (
	"testing"

	"ecgrid/internal/geom"
	"ecgrid/internal/mobility"
	"ecgrid/internal/sim"
)

// TestFactoryGroupSharing: members of one group attach to one shared
// reference (they stay within a group diameter of each other forever),
// and different groups get different references.
func TestFactoryGroupSharing(t *testing.T) {
	spec := &Mobility{Kind: MobilityGroup, GroupSize: 3, RadiusM: 60}
	f := NewMobilityFactory(spec, area1000(), 10, 0, sim.NewRNG(5))
	models := make([]mobility.Model, 6)
	for i := range models {
		models[i] = f.Model(i, geom.Point{X: 200 + 100*float64(i), Y: 500})
	}
	if len(f.refs) != 2 {
		t.Fatalf("6 hosts in groups of 3 created %d references", len(f.refs))
	}
	for u := 0.0; u < 300; u += 7 {
		if d := models[0].Position(u).Dist(models[2].Position(u)); d > 2*60*1.4143 {
			t.Fatalf("t=%v: same-group members %v m apart", u, d)
		}
	}
	// Distinct groups must not share a trajectory.
	same := true
	for u := 10.0; u < 300; u += 10 {
		if models[0].Position(u) != models[3].Position(u) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("hosts of different groups follow one trajectory")
	}
}

// TestFactoryDeterministic: two factories over equal seeds expand to
// identical trajectories, for both kinds.
func TestFactoryDeterministic(t *testing.T) {
	for _, spec := range []*Mobility{
		{Kind: MobilityManhattan, BlockM: 100},
		{Kind: MobilityGroup, GroupSize: 4, RadiusM: 50, LocalSpeedMS: 1},
	} {
		build := func() []mobility.Model {
			f := NewMobilityFactory(spec, area1000(), 8, 1, sim.NewRNG(11))
			ms := make([]mobility.Model, 8)
			for i := range ms {
				ms[i] = f.Model(i, geom.Point{X: 100 * float64(i+1), Y: 300})
			}
			return ms
		}
		a, b := build(), build()
		for i := range a {
			for u := 0.0; u < 200; u += 3 {
				if a[i].Position(u) != b[i].Position(u) {
					t.Fatalf("%s: host %d diverges at t=%v", spec.Kind, i, u)
				}
			}
		}
	}
}

// TestFactoryManhattanOnLattice: factory-built street models respect
// the model invariant (a smoke check that parameters pass through).
func TestFactoryManhattanOnLattice(t *testing.T) {
	f := NewMobilityFactory(&Mobility{Kind: MobilityManhattan, BlockM: 250}, area1000(), 14, 0.5, sim.NewRNG(3))
	m := f.Model(0, geom.Point{X: 333, Y: 777})
	for u := 0.0; u < 500; u += 1.3 {
		p := m.Position(u)
		onX := p.X == 0 || p.X == 250 || p.X == 500 || p.X == 750 || p.X == 1000
		onY := p.Y == 0 || p.Y == 250 || p.Y == 500 || p.Y == 750 || p.Y == 1000
		// One coordinate sits exactly on a street during travel along
		// the other; allow float slop via rounding.
		if !onX && !onY {
			rx := p.X/250 - float64(int(p.X/250+0.5))
			ry := p.Y/250 - float64(int(p.Y/250+0.5))
			if rx > 1e-9 && rx < 1-1e-9 && ry > 1e-9 && ry < 1-1e-9 {
				t.Fatalf("t=%v: %v off the 250 m lattice", u, p)
			}
		}
	}
}
