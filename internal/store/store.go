// Package store persists simulation results in a content-addressed,
// crash-safe directory tree fronted by a bounded in-memory LRU cache.
//
// Keys are internal/batch's SHA-256 content keys: the hash of a
// scenario's canonical JSON encoding. Because every simulation in this
// repository is deterministic (DESIGN.md §8), a content key fully
// identifies its results — a stored entry never goes stale, so the
// store memoizes runs *forever* and a cache hit is exact, not
// approximate. That property is what makes sharing one store between
// the CLI tools (cmd/sweep, cmd/figures) and the cmd/simd daemon sound:
// whichever computed a key first, everyone else reads it back.
//
// Layout: one file per key under a two-hex-character shard directory,
//
//	<root>/ab/abcdef….json
//
// so no single directory grows beyond ~1/256 of the population. Writes
// go to a temp file in the shard directory and are renamed into place;
// rename is atomic on POSIX filesystems, so readers — including readers
// in other processes — observe either the complete entry or none, and a
// crash mid-write leaves only a temp file that every read path ignores.
// Concurrent writers of the same key are harmless: determinism means
// they carry identical bytes, and the last rename wins.
//
// The value format is runner.(*Results).CanonicalJSON — stable across
// encode/decode cycles — so GetBytes returns bytes identical to the ones
// the original run produced, forever, across process restarts.
package store

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ecgrid/internal/runner"
)

// DefaultCacheEntries bounds the in-memory LRU front when Open is given
// a non-positive capacity.
const DefaultCacheEntries = 1024

// Store is a content-addressed result store rooted at one directory.
// All methods are safe for concurrent use, including by multiple
// goroutines mixing reads and writes of the same keys.
type Store struct {
	root string

	mu    sync.Mutex
	max   int
	ll    *list.List               // front = most recently used
	cache map[string]*list.Element // key → element holding *entry
}

// entry is one LRU cell: the key and its immutable canonical bytes.
type entry struct {
	key  string
	data []byte
}

// Open creates (if needed) and returns the store rooted at dir. The LRU
// front holds up to cacheEntries results in memory; <= 0 uses
// DefaultCacheEntries.
func Open(dir string, cacheEntries int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty root directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if cacheEntries <= 0 {
		cacheEntries = DefaultCacheEntries
	}
	return &Store{
		root:  dir,
		max:   cacheEntries,
		ll:    list.New(),
		cache: make(map[string]*list.Element),
	}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// ValidKey reports whether key has the shape of a content key: 64
// lowercase hex characters. Every path below rejects other strings, so
// a hostile key can never escape the root (no separators, no dots).
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path returns the entry file for key: <root>/<key[:2]>/<key>.json.
func (s *Store) path(key string) string {
	return filepath.Join(s.root, key[:2], key+".json")
}

// GetBytes returns the canonical result bytes stored under key, or
// ok=false if the key is absent. The returned slice is shared with the
// cache and must not be modified.
func (s *Store) GetBytes(key string) ([]byte, bool, error) {
	if !ValidKey(key) {
		return nil, false, fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	if el, ok := s.cache[key]; ok {
		s.ll.MoveToFront(el)
		data := el.Value.(*entry).data
		s.mu.Unlock()
		return data, true, nil
	}
	s.mu.Unlock()

	data, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	s.remember(key, data)
	return data, true, nil
}

// Get returns the results stored under key, decoded, or ok=false if the
// key is absent. Each call decodes afresh, so callers may freely mutate
// the returned value.
func (s *Store) Get(key string) (*runner.Results, bool, error) {
	data, ok, err := s.GetBytes(key)
	if err != nil || !ok {
		return nil, false, err
	}
	var res runner.Results
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false, fmt.Errorf("store: decode %s: %w", key, err)
	}
	return &res, true, nil
}

// Put stores res under key, atomically: the entry is written to a temp
// file in the key's shard directory and renamed into place, so a
// concurrent or crashed Put never exposes a partial entry. Putting an
// existing key overwrites it (with identical bytes, under the
// determinism contract).
func (s *Store) Put(key string, res *runner.Results) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	data, err := res.CanonicalJSON()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	dst := s.path(key)
	dir := filepath.Dir(dst)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Any failure past this point must not leave the temp file behind.
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.remember(key, data)
	return nil
}

// remember inserts (or refreshes) key in the LRU front, evicting the
// least recently used entry beyond capacity.
func (s *Store) remember(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.cache[key]; ok {
		el.Value.(*entry).data = data
		s.ll.MoveToFront(el)
		return
	}
	s.cache[key] = s.ll.PushFront(&entry{key: key, data: data})
	for s.ll.Len() > s.max {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.cache, back.Value.(*entry).key)
	}
}

// CacheLen returns the number of entries currently held by the
// in-memory LRU front (bounded by Open's capacity).
func (s *Store) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Scan calls fn once per stored key, in ascending key order. Temp files
// from in-flight or crashed writes are ignored. fn returning an error
// stops the scan and returns that error.
func (s *Store) Scan(fn func(key string) error) error {
	shards, err := os.ReadDir(s.root)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.root, sh.Name()))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("store: %w", err)
		}
		for _, f := range files {
			key := strings.TrimSuffix(f.Name(), ".json")
			if f.Type()&fs.ModeType != 0 || !strings.HasSuffix(f.Name(), ".json") || !ValidKey(key) {
				continue // temp files, oddities
			}
			if key[:2] != sh.Name() {
				continue // misfiled; not ours
			}
			names = append(names, key)
		}
	}
	sort.Strings(names)
	for _, key := range names {
		if err := fn(key); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of complete entries on disk (in-flight temp
// files excluded). It walks the shard directories, so it is a metrics
// and tooling call, not a hot-path one.
func (s *Store) Len() (int, error) {
	n := 0
	err := s.Scan(func(string) error { n++; return nil })
	return n, err
}
