package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ecgrid/internal/batch"
	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
)

// smallCfg is a scenario small enough to run in milliseconds.
func smallCfg(seed int64) scenario.Config {
	cfg := scenario.Default(scenario.ECGRID)
	cfg.Hosts = 8
	cfg.Flows = 2
	cfg.Duration = 10
	cfg.Seed = seed
	return cfg
}

// fakeResults fabricates a distinguishable Results without running a
// simulation, for tests that exercise storage mechanics, not sims.
func fakeResults(i int) *runner.Results {
	return &runner.Results{Cfg: smallCfg(int64(i)), Sent: i, Delivered: i / 2}
}

// fakeKey returns a syntactically valid content key for index i.
func fakeKey(i int) string { return fmt.Sprintf("%064x", i) }

func mustOpen(t *testing.T, cache int) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), cache)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, 0)
	cfg := smallCfg(1)
	key := batch.Key(cfg)
	res := runner.Run(cfg)
	want, err := res.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("Get before Put = ok=%v err=%v, want miss", ok, err)
	}
	if err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetBytes(key)
	if err != nil || !ok {
		t.Fatalf("GetBytes after Put = ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stored bytes differ from CanonicalJSON")
	}
	dec, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	re, err := dec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, want) {
		t.Fatalf("decode+re-encode is not canonical: store round-trip changes bytes")
	}
}

// TestStoreVsDirectRunEquivalence is the store analog of
// runner.TestSchedulerEquivalence: results served from the store must be
// byte-identical to running the simulation directly — across a process
// "restart" modeled by reopening the directory with a cold cache.
func TestStoreVsDirectRunEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []scenario.ProtocolKind{scenario.ECGRID, scenario.SPAN} {
		t.Run(string(proto), func(t *testing.T) {
			cfg := scenario.Default(proto)
			cfg.Hosts = 12
			cfg.Duration = 20
			cfg.Seed = 7
			key := batch.Key(cfg)

			direct, err := runner.Run(cfg).CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(key, runner.Run(cfg)); err != nil {
				t.Fatal(err)
			}

			cached, ok, err := s.GetBytes(key)
			if err != nil || !ok {
				t.Fatalf("GetBytes = ok=%v err=%v", ok, err)
			}
			if !bytes.Equal(cached, direct) {
				t.Fatalf("store hit diverged from direct run")
			}

			// Reopen: a fresh Store over the same directory (cold LRU)
			// must serve the same bytes from disk.
			s2, err := Open(dir, 4)
			if err != nil {
				t.Fatal(err)
			}
			again, ok, err := s2.GetBytes(key)
			if err != nil || !ok {
				t.Fatalf("reopened GetBytes = ok=%v err=%v", ok, err)
			}
			if !bytes.Equal(again, direct) {
				t.Fatalf("reopened store diverged from direct run")
			}
		})
	}
}

// TestConcurrentPutGet races writers and readers over a small key set;
// run under -race (CI does) this is the store's thread-safety proof.
func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, 4) // capacity below key count: eviction races too
	const keys = 8
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fakeKey((w + i) % keys)
				if w%2 == 0 {
					if err := s.Put(k, fakeResults((w+i)%keys)); err != nil {
						t.Error(err)
						return
					}
				}
				if _, _, err := s.GetBytes(k); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < keys; i++ {
		if _, ok, err := s.Get(fakeKey(i)); err != nil || !ok {
			t.Fatalf("key %d after race: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestCrashSafetyTempIgnored models a crash mid-Put: a partial temp file
// in a shard directory must be invisible to Get, Scan, and Len.
func TestCrashSafetyTempIgnored(t *testing.T) {
	s := mustOpen(t, 0)
	key := fakeKey(1)
	if err := s.Put(key, fakeResults(1)); err != nil {
		t.Fatal(err)
	}

	// A torn write: temp file next to a real entry, and a whole shard
	// containing nothing but a temp file.
	shard := filepath.Dir(s.path(key))
	if err := os.WriteFile(filepath.Join(shard, ".tmp-123456"), []byte(`{"partial`), 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := fakeKey(0xab)
	if err := os.MkdirAll(filepath.Dir(s.path(orphan)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(filepath.Dir(s.path(orphan)), ".tmp-9"), []byte(`x`), 0o644); err != nil {
		t.Fatal(err)
	}

	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 (temp files ignored)", n, err)
	}
	var scanned []string
	if err := s.Scan(func(k string) error { scanned = append(scanned, k); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(scanned) != 1 || scanned[0] != key {
		t.Fatalf("Scan = %v, want [%s]", scanned, key)
	}
	if _, ok, err := s.Get(orphan); err != nil || ok {
		t.Fatalf("orphan shard Get = ok=%v err=%v, want clean miss", ok, err)
	}
}

func TestLRUEvictionBounded(t *testing.T) {
	s := mustOpen(t, 2)
	const n = 5
	for i := 0; i < n; i++ {
		if err := s.Put(fakeKey(i), fakeResults(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.CacheLen(); got != 2 {
		t.Fatalf("CacheLen = %d, want 2", got)
	}
	// Evicted entries still come back from disk (and re-enter the cache
	// without growing it past capacity).
	for i := 0; i < n; i++ {
		if _, ok, err := s.Get(fakeKey(i)); err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
	}
	if got := s.CacheLen(); got != 2 {
		t.Fatalf("CacheLen after re-reads = %d, want 2", got)
	}
	if got, err := s.Len(); err != nil || got != n {
		t.Fatalf("disk Len = %d, %v; want %d", got, err, n)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := mustOpen(t, 0)
	bad := []string{
		"",
		"abc",
		"../../../../etc/passwd",
		"ABCDEF0000000000000000000000000000000000000000000000000000000000", // uppercase
		fakeKey(1) + "00", // too long
	}
	for _, k := range bad {
		if err := s.Put(k, fakeResults(0)); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", k)
		}
		if _, _, err := s.GetBytes(k); err == nil {
			t.Errorf("GetBytes(%q) accepted an invalid key", k)
		}
	}
}
