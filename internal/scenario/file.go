package scenario

import (
	"encoding/json"
	"fmt"
	"os"
)

// Scenario files: a Config serializes to JSON so experiment setups can be
// versioned and shared (ns-2 users keep .tcl scenario files; this is the
// equivalent). The Trace recorder is runtime-only and not serialized.

// Save writes the configuration to path as indented JSON.
func (c Config) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: marshal: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// Load reads a configuration from path. Fields absent from the file keep
// the zero value, so files usually start from a Default and override; the
// result is validated before being returned.
func Load(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("scenario: %w", err)
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("scenario: parse %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return c, nil
}
