package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Scenario files: a Config serializes to JSON so experiment setups can be
// versioned and shared (ns-2 users keep .tcl scenario files; this is the
// equivalent). The Trace recorder is runtime-only and not serialized.

// Save writes the configuration to path as indented JSON.
func (c Config) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: marshal: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// ResolveRef loads a scenario by reference: a path to a scenario JSON
// file, or the bare name of a committed library entry, resolved as
// scenarios/<name>.json relative to the working directory (the repo
// keeps its generated-scenario library there). A path wins when both
// exist.
func ResolveRef(ref string) (Config, error) {
	if _, err := os.Stat(ref); err == nil {
		return Load(ref)
	}
	lib := filepath.Join("scenarios", ref+".json")
	if _, err := os.Stat(lib); err == nil {
		return Load(lib)
	}
	return Config{}, fmt.Errorf("scenario: %q is neither a scenario file nor a scenarios/ library name", ref)
}

// Load reads a configuration from path. Fields absent from the file keep
// the zero value, so files usually start from a Default and override; the
// result is validated before being returned.
func Load(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("scenario: %w", err)
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("scenario: parse %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return c, nil
}
