package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"ecgrid/internal/faults"
)

func TestValidateCoversFaultPlan(t *testing.T) {
	cfg := Default(ECGRID)
	cfg.Faults = &faults.Plan{
		Crashes: []faults.Crash{{Host: cfg.Hosts, At: 10}}, // index one past the end
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("out-of-range crash host accepted")
	}
	cfg.Faults = &faults.Plan{
		Jams: []faults.Jam{{
			Region:   faults.Region{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
			From:     cfg.Duration + 1, // past the end of the run
			Until:    cfg.Duration + 2,
			DropProb: 1,
		}},
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("jam window beyond the run duration accepted")
	}
	plan, err := faults.Preset("mixed", cfg.Hosts, cfg.AreaSize, cfg.Duration)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid preset plan rejected: %v", err)
	}
}

func TestValidateGAFFaultPlanCoversEndpoints(t *testing.T) {
	// GAF endpoint hosts extend the host index space; a crash targeting
	// one of them must validate.
	cfg := Default(GAF)
	cfg.Faults = &faults.Plan{
		Crashes: []faults.Crash{{Host: cfg.Hosts + cfg.EndpointHosts - 1, At: 10, Downtime: 5}},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("endpoint-host crash rejected: %v", err)
	}
	cfg.Faults = &faults.Plan{
		Crashes: []faults.Crash{{Host: cfg.Hosts + cfg.EndpointHosts, At: 10}},
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("crash past the endpoint range accepted")
	}
}

func TestNilFaultPlanOmittedFromJSON(t *testing.T) {
	// The batch runner keys manifests on the marshaled Config; a nil plan
	// must not change the JSON, or every pre-existing manifest key breaks.
	data, err := json.Marshal(Default(ECGRID))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "Faults") {
		t.Fatalf("nil fault plan leaked into config JSON: %s", data)
	}
}

func TestFaultPlanSurvivesSaveLoad(t *testing.T) {
	path := t.TempDir() + "/faulted.json"
	cfg := Default(ECGRID)
	plan, err := faults.Preset("gateway-crash", cfg.Hosts, cfg.AreaSize, cfg.Duration)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Faults == nil || len(got.Faults.Crashes) != 1 {
		t.Fatalf("fault plan lost in round trip: %+v", got.Faults)
	}
	if !got.Faults.Crashes[0].AnyGateway {
		t.Fatal("crash details lost in round trip")
	}
}
