// Package scenario defines the configuration of one simulation run,
// mirroring the setup of the paper's §4: a 1000×1000 m region, 2 Mbps
// radio with 250 m range, 100 m grid, random-waypoint mobility, CBR
// traffic, and the Feeney energy model with 500 J per host.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"ecgrid/internal/core"
	"ecgrid/internal/faults"
	"ecgrid/internal/protocols/gaf"
	"ecgrid/internal/radio"
	"ecgrid/internal/scengen"
	"ecgrid/internal/trace"
)

// ProtocolKind selects the protocol under test.
type ProtocolKind string

const (
	// ECGRID is the paper's contribution.
	ECGRID ProtocolKind = "ecgrid"
	// GRID is the non-energy-aware baseline.
	GRID ProtocolKind = "grid"
	// GAF is the timer-based sleeping baseline (Model 1: ten
	// infinite-energy endpoints that never sleep or forward).
	GAF ProtocolKind = "gaf"
	// AODV is plain host-by-host AODV with every host always on — the
	// protocol GRID descends from, included as an extension baseline.
	AODV ProtocolKind = "aodv"
	// SPAN is the coordinator-backbone baseline of the paper's §1
	// comparison: topology-elected always-on coordinators plus
	// PSM-style duty cycling for everyone else.
	SPAN ProtocolKind = "span"
)

// Known lists every protocol kind, in the order the paper introduces
// them.
func Known() []ProtocolKind {
	return []ProtocolKind{ECGRID, GRID, GAF, AODV, SPAN}
}

// ParseProtocol resolves a user-supplied protocol name
// (case-insensitive, surrounding space ignored), so CLIs can reject an
// unknown name up front instead of panicking mid-sweep.
func ParseProtocol(s string) (ProtocolKind, error) {
	p := ProtocolKind(strings.ToLower(strings.TrimSpace(s)))
	for _, k := range Known() {
		if p == k {
			return k, nil
		}
	}
	return "", fmt.Errorf("scenario: unknown protocol %q (known: %v)", s, Known())
}

// Config describes one run.
type Config struct {
	Protocol ProtocolKind
	// Hosts is the number of energy-limited hosts (the paper varies
	// 50–200). Under GAF, EndpointHosts infinite-energy hosts are
	// added on top (Model 1).
	Hosts         int
	EndpointHosts int
	// AreaSize is the square region's side in meters.
	AreaSize float64
	// GridSize is the logical cell side d in meters.
	GridSize float64
	// Radio parameterizes the channel.
	Radio radio.Config
	// Mobility selects the movement model: "waypoint" (the paper's
	// random waypoint; the default when empty) or "direction" (random
	// direction with border reflection, a uniform-density robustness
	// check).
	Mobility string
	// MaxSpeedMS is the random-waypoint top speed (speeds are uniform
	// in (0, max]); the paper uses 1 and 10 m/s. Under "direction" it
	// is the constant movement speed.
	MaxSpeedMS float64
	// PauseTime is the random-waypoint pause, 0–600 s in the paper.
	PauseTime float64
	// Flows is the number of CBR flows; RatePerFlow their packet rate.
	// The paper's "network traffic load is 10 pkts/s" is 10 flows of
	// 1 pkt/s.
	Flows       int
	RatePerFlow float64
	PacketBytes int
	// TrafficStart delays the first packets so the initial election
	// settles.
	TrafficStart float64
	// InitialEnergyJ is each energy-limited host's battery (500 J).
	InitialEnergyJ float64
	// Duration is the simulated time in seconds.
	Duration float64
	// SampleEvery is the metrics sampling period.
	SampleEvery float64
	// Seed roots every random stream; equal seeds reproduce runs
	// exactly.
	Seed int64
	// ECGRIDOptions / GAFOptions override protocol tunables; nil uses
	// the defaults (GridOptions for GRID).
	ECGRIDOptions *core.Options
	GAFOptions    *gaf.Options
	// HeapScheduler runs the event engine on the binary-heap reference
	// scheduler instead of the default calendar queue — sim's analog of
	// Radio.BruteForce. Both produce byte-identical runs; the knob
	// exists for the equivalence tests and for debugging. omitempty
	// keeps the JSON encoding (and batch manifest keys) of default
	// configs unchanged.
	HeapScheduler bool `json:",omitempty"`
	// Shards, when ≥ 2, executes the run on the spatially-sharded
	// parallel engine (internal/shard): the plane is cut into Shards
	// column strips of grid cells, worker goroutines advance each
	// strip's hosts under conservative synchronization, and the event
	// commit stays serial — so every value of Shards produces
	// byte-identical metrics and traces to the single-engine reference.
	// 0 (the default) and 1 both run the reference path verbatim.
	// Validate rejects negative values and values exceeding the number
	// of grid-cell columns (a strip must be at least one column wide).
	// omitempty keeps the JSON encoding — and with it batch manifest and
	// store keys — of non-sharded configs unchanged.
	Shards int `json:",omitempty"`
	// Faults, if non-nil and non-empty, injects the plan's crashes,
	// battery shocks, jamming, paging loss, and GPS errors into the run.
	// omitempty keeps the JSON encoding — and with it batch manifest
	// keys — identical to fault-free configs when no plan is set.
	Faults *faults.Plan `json:",omitempty"`
	// Gen, if non-nil, expands a declarative scenario-generator spec
	// (internal/scengen) over this config: deployment replaces the
	// uniform placement, mobility overrides the Mobility field, traffic
	// reshapes the flows, and propagation adds obstacles to the
	// channel. omitempty keeps batch keys of plain configs unchanged,
	// exactly as with Faults.
	Gen *scengen.Spec `json:",omitempty"`
	// Trace, if non-nil, records every transmission (and deliveries)
	// into the given recorder. Runtime-only: not serialized.
	Trace *trace.Recorder `json:"-"`
}

// Default returns the paper's common setup with the given protocol.
func Default(p ProtocolKind) Config {
	return Config{
		Protocol:       p,
		Hosts:          100,
		EndpointHosts:  10,
		AreaSize:       1000,
		GridSize:       100,
		Radio:          radio.DefaultConfig(),
		MaxSpeedMS:     1,
		PauseTime:      0,
		Flows:          10,
		RatePerFlow:    1,
		PacketBytes:    512,
		TrafficStart:   5,
		InitialEnergyJ: 500,
		Duration:       2000,
		SampleEvery:    10,
		Seed:           1,
	}
}

// Validate checks the configuration for mistakes a constructor cannot
// repair.
func (c Config) Validate() error {
	switch c.Protocol {
	case ECGRID, GRID, GAF, AODV, SPAN:
	default:
		return fmt.Errorf("scenario: unknown protocol %q", c.Protocol)
	}
	if c.Hosts <= 0 {
		return errors.New("scenario: need at least one host")
	}
	if c.Protocol == GAF && c.EndpointHosts < 2 && c.Flows > 0 {
		return errors.New("scenario: GAF Model 1 needs at least two endpoint hosts")
	}
	if c.AreaSize <= 0 || c.GridSize <= 0 || !finite(c.AreaSize) || !finite(c.GridSize) {
		return errors.New("scenario: non-positive or degenerate area or grid size")
	}
	if c.GridSize > c.AreaSize {
		return errors.New("scenario: grid cell larger than the area")
	}
	if c.MaxSpeedMS <= 0 || !finite(c.MaxSpeedMS) {
		return errors.New("scenario: non-positive speed")
	}
	switch c.Mobility {
	case "", "waypoint", "direction":
	default:
		return fmt.Errorf("scenario: unknown mobility model %q", c.Mobility)
	}
	if c.PauseTime < 0 || !finite(c.PauseTime) {
		return errors.New("scenario: negative pause time")
	}
	// Traffic parameters must be sane even with zero flows: a negative
	// rate or packet size in a flow-less config is a sweep-construction
	// bug that would otherwise hide until Flows goes positive.
	if c.Flows < 0 || c.RatePerFlow < 0 || c.PacketBytes < 0 || !finite(c.RatePerFlow) {
		return errors.New("scenario: invalid traffic parameters")
	}
	if c.Flows > 0 && (c.RatePerFlow <= 0 || c.PacketBytes <= 0) {
		return errors.New("scenario: invalid traffic parameters")
	}
	if c.TrafficStart < 0 || !finite(c.TrafficStart) {
		return errors.New("scenario: negative traffic start")
	}
	if c.Flows > 0 && c.Hosts < 2 && c.Protocol != GAF {
		return errors.New("scenario: traffic needs at least two hosts")
	}
	if c.InitialEnergyJ <= 0 || !finite(c.InitialEnergyJ) {
		return errors.New("scenario: non-positive initial energy")
	}
	if c.Duration <= 0 || c.SampleEvery <= 0 || !finite(c.Duration) || !finite(c.SampleEvery) {
		return errors.New("scenario: non-positive duration or sample period")
	}
	if c.Shards < 0 {
		return errors.New("scenario: negative shard count")
	}
	if cols := int(math.Ceil(c.AreaSize / c.GridSize)); c.Shards > cols {
		return fmt.Errorf("scenario: %d shards exceed the %d-column cell grid (a shard strip is at least one column of %gm cells)",
			c.Shards, cols, c.GridSize)
	}
	if c.Faults != nil {
		total := c.Hosts
		if c.Protocol == GAF {
			total += c.EndpointHosts
		}
		if err := c.Faults.Validate(total, c.AreaSize, c.Duration); err != nil {
			return err
		}
	}
	if c.Gen != nil {
		if c.Gen.Mobility != nil && c.Mobility != "" {
			return fmt.Errorf("scenario: both Mobility %q and a generator mobility spec set", c.Mobility)
		}
		total := c.Hosts
		if c.Protocol == GAF {
			total += c.EndpointHosts
		}
		if err := c.Gen.Validate(total, c.AreaSize); err != nil {
			return err
		}
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// NetworkLoadPktsPerSec returns the aggregate offered load.
func (c Config) NetworkLoadPktsPerSec() float64 {
	return float64(c.Flows) * c.RatePerFlow
}

// String summarizes the scenario for logs and reports.
func (c Config) String() string {
	return fmt.Sprintf("%s n=%d v≤%gm/s pause=%gs load=%gpkt/s seed=%d",
		c.Protocol, c.Hosts, c.MaxSpeedMS, c.PauseTime, c.NetworkLoadPktsPerSec(), c.Seed)
}
