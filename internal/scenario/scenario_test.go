package scenario

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"

	"ecgrid/internal/scengen"
)

func TestDefaultIsValid(t *testing.T) {
	for _, p := range []ProtocolKind{ECGRID, GRID, GAF} {
		if err := Default(p).Validate(); err != nil {
			t.Errorf("Default(%s) invalid: %v", p, err)
		}
	}
}

func TestDefaultMatchesPaperSetup(t *testing.T) {
	cfg := Default(ECGRID)
	if cfg.AreaSize != 1000 || cfg.GridSize != 100 {
		t.Errorf("area/grid = %v/%v", cfg.AreaSize, cfg.GridSize)
	}
	if cfg.Radio.Range != 250 || cfg.Radio.BitrateBps != 2e6 {
		t.Errorf("radio = %+v", cfg.Radio)
	}
	if cfg.InitialEnergyJ != 500 {
		t.Errorf("energy = %v", cfg.InitialEnergyJ)
	}
	if cfg.Hosts != 100 || cfg.PacketBytes != 512 {
		t.Errorf("hosts/bytes = %d/%d", cfg.Hosts, cfg.PacketBytes)
	}
	if cfg.NetworkLoadPktsPerSec() != 10 {
		t.Errorf("load = %v, want the paper's 10 pkt/s", cfg.NetworkLoadPktsPerSec())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := map[string]func(*Config){
		"bad protocol":      func(c *Config) { c.Protocol = "bogus" },
		"no hosts":          func(c *Config) { c.Hosts = 0 },
		"zero area":         func(c *Config) { c.AreaSize = 0 },
		"zero grid":         func(c *Config) { c.GridSize = 0 },
		"grid > area":       func(c *Config) { c.GridSize = 5000 },
		"zero speed":        func(c *Config) { c.MaxSpeedMS = 0 },
		"negative pause":    func(c *Config) { c.PauseTime = -1 },
		"negative flows":    func(c *Config) { c.Flows = -1 },
		"zero rate":         func(c *Config) { c.RatePerFlow = 0 },
		"zero packet bytes": func(c *Config) { c.PacketBytes = 0 },
		"zero energy":       func(c *Config) { c.InitialEnergyJ = 0 },
		"zero duration":     func(c *Config) { c.Duration = 0 },
		"zero sampling":     func(c *Config) { c.SampleEvery = 0 },
		"one host traffic":  func(c *Config) { c.Hosts = 1 },
		// Degenerate values that used to slip through: traffic knobs
		// must be sane even with no flows, and non-finite floats are
		// never valid anywhere.
		"negative rate, no flows":  func(c *Config) { c.Flows = 0; c.RatePerFlow = -1 },
		"negative bytes, no flows": func(c *Config) { c.Flows = 0; c.PacketBytes = -64 },
		"negative traffic start":   func(c *Config) { c.TrafficStart = -5 },
		"NaN area":                 func(c *Config) { c.AreaSize = math.NaN() },
		"Inf area":                 func(c *Config) { c.AreaSize = math.Inf(1) },
		"NaN grid":                 func(c *Config) { c.GridSize = math.NaN() },
		"NaN speed":                func(c *Config) { c.MaxSpeedMS = math.NaN() },
		"Inf speed":                func(c *Config) { c.MaxSpeedMS = math.Inf(1) },
		"NaN pause":                func(c *Config) { c.PauseTime = math.NaN() },
		"NaN rate":                 func(c *Config) { c.RatePerFlow = math.NaN() },
		"NaN traffic start":        func(c *Config) { c.TrafficStart = math.NaN() },
		"NaN energy":               func(c *Config) { c.InitialEnergyJ = math.NaN() },
		"NaN duration":             func(c *Config) { c.Duration = math.NaN() },
		"Inf duration":             func(c *Config) { c.Duration = math.Inf(1) },
		"NaN sampling":             func(c *Config) { c.SampleEvery = math.NaN() },
	}
	for name, mutate := range mutations {
		cfg := Default(ECGRID)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted it", name)
		}
	}
}

// TestValidateShards covers each shard-count rejection separately: a
// negative count is always a caller bug, and a count above the number
// of grid-cell columns cannot be honored (a shard strip is at least one
// column wide). Valid values — 0 (serial default), 1 (explicit
// reference), and anything up to the column count — must pass.
func TestValidateShards(t *testing.T) {
	t.Run("negative", func(t *testing.T) {
		cfg := Default(ECGRID)
		cfg.Shards = -1
		if err := cfg.Validate(); err == nil {
			t.Fatal("Validate accepted Shards = -1")
		}
	})
	t.Run("exceeds cell grid", func(t *testing.T) {
		cfg := Default(ECGRID) // 1000 m area, 100 m cells: 10 columns
		cfg.Shards = 11
		if err := cfg.Validate(); err == nil {
			t.Fatal("Validate accepted more shards than cell columns")
		}
	})
	t.Run("valid range", func(t *testing.T) {
		for _, k := range []int{0, 1, 2, 7, 10} {
			cfg := Default(ECGRID)
			cfg.Shards = k
			if err := cfg.Validate(); err != nil {
				t.Fatalf("Shards = %d rejected: %v", k, err)
			}
		}
	})
}

// TestShardsOmitemptyKeepsEncoding: non-sharded configs must encode
// exactly as before the field existed, so batch manifest and store keys
// of the entire existing result corpus stay stable.
func TestShardsOmitemptyKeepsEncoding(t *testing.T) {
	b, err := json.Marshal(Default(ECGRID))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "Shards") {
		t.Fatalf("zero Shards leaked into the encoding: %s", b)
	}
}

func TestValidateGAFEndpoints(t *testing.T) {
	cfg := Default(GAF)
	cfg.EndpointHosts = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("GAF with one endpoint accepted")
	}
	cfg.EndpointHosts = 1
	cfg.Flows = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("GAF without traffic rejected: %v", err)
	}
}

func TestString(t *testing.T) {
	s := Default(ECGRID).String()
	for _, want := range []string{"ecgrid", "n=100", "10pkt/s", "seed=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestValidateMobilityModel(t *testing.T) {
	cfg := Default(ECGRID)
	for _, ok := range []string{"", "waypoint", "direction"} {
		cfg.Mobility = ok
		if err := cfg.Validate(); err != nil {
			t.Errorf("mobility %q rejected: %v", ok, err)
		}
	}
	cfg.Mobility = "teleport"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown mobility model accepted")
	}
}

func TestValidateGenSpec(t *testing.T) {
	cfg := Default(ECGRID)
	cfg.Gen = &scengen.Spec{Mobility: &scengen.Mobility{Kind: scengen.MobilityManhattan, BlockM: 100}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid generator spec rejected: %v", err)
	}
	// A generator mobility axis and the plain Mobility field are two
	// answers to one question; setting both is ambiguous.
	cfg.Mobility = "waypoint"
	if err := cfg.Validate(); err == nil {
		t.Error("conflicting Mobility + generator mobility accepted")
	}
	cfg.Mobility = ""
	cfg.Gen.Mobility.BlockM = -1
	if err := cfg.Validate(); err == nil {
		t.Error("invalid generator spec accepted")
	}
	// An all-nil spec is inert and valid.
	cfg.Gen = &scengen.Spec{}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("empty generator spec rejected: %v", err)
	}
}

// TestGenOmitemptyKeepsEncoding: configs without a generator spec must
// encode exactly as before the field existed — that invariance is what
// keeps batch manifest keys of the whole existing corpus stable.
func TestGenOmitemptyKeepsEncoding(t *testing.T) {
	b, err := json.Marshal(Default(ECGRID))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "Gen") {
		t.Fatalf("nil Gen leaked into the encoding: %s", b)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/scenario.json"
	cfg := Default(ECGRID)
	cfg.Hosts = 42
	cfg.PauseTime = 123
	cfg.Mobility = "direction"
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hosts != 42 || got.PauseTime != 123 || got.Mobility != "direction" || got.Protocol != ECGRID {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Radio.Range != cfg.Radio.Range {
		t.Fatal("nested radio config lost")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.json"
	cfg := Default(ECGRID)
	cfg.Hosts = 0 // invalid
	data := `{"Protocol":"ecgrid","Hosts":0}`
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("invalid file accepted")
	}
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := Load(dir + "/missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func writeFile(path, data string) error {
	return os.WriteFile(path, []byte(data), 0o644)
}
