// Package prof attaches the standard runtime/pprof CPU and heap
// profilers to a command-line run. Commands pass their
// -cpuprofile/-memprofile flag values to Start; the returned stop
// function is idempotent, so it is safe to both defer it and hand it
// to a signal handler — profiles get written on clean exit and on
// SIGINT alike.
package prof

import (
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
)

// Start begins CPU profiling into cpuPath (if non-empty) and arranges
// for an allocation profile to be written to memPath (if non-empty)
// when the returned stop function runs. Empty paths disable the
// corresponding profile; with both empty, stop is a no-op. Profile
// write failures at stop time are reported on stderr rather than
// returned — by then the command's real work is already done.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "cpuprofile:", err)
				}
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "memprofile:", err)
					return
				}
				runtime.GC() // settle the live set so the heap numbers are current
				if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
					fmt.Fprintln(os.Stderr, "memprofile:", err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "memprofile:", err)
				}
			}
		})
	}
	return stop, nil
}

// StopOnInterrupt flushes profiles and exits when the process receives
// SIGINT or SIGTERM. For commands whose main loop is not otherwise
// interruptible (ecgridsim blocks inside one simulation run). Commands
// with their own signal handling — sweep cancels a batch context and
// unwinds normally — should rely on their deferred stop instead.
func StopOnInterrupt(stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		stop()
		os.Exit(130) // 128 + SIGINT, the conventional interrupted-exit code
	}()
}
