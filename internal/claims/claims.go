// Package claims turns the paper's qualitative evaluation claims into
// executable checks: each Claim quotes the paper, runs the simulations it
// needs, and returns a PASS/FAIL verdict with the measured numbers.
// cmd/repro prints the whole checklist — the repository's reproduction
// status as a program rather than prose.
package claims

import (
	"context"
	"fmt"
	"sync"

	"ecgrid/internal/batch"
	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
)

// Verdict is one claim's outcome.
type Verdict struct {
	Pass   bool
	Detail string // the measured numbers behind the verdict
}

// Claim is one checkable statement from the paper.
type Claim struct {
	ID        string
	Statement string // the paper's claim, paraphrased from §4
	Check     func(e *Env) Verdict
}

// Env runs and caches simulations so claims share them. The simulations
// go through a batch.Executor, which deduplicates by content key: when
// claims are checked concurrently (CheckAll), two claims requesting the
// same configuration share one run, and the pool caps how many
// simulations execute at once. Env is safe for use from multiple
// goroutines once the exported fields are set.
type Env struct {
	// Seed roots every simulation.
	Seed int64
	// Fast shrinks horizons (for tests); verdict thresholds are chosen
	// to hold in both modes.
	Fast bool
	// Progress, if non-nil, is told about each simulation run. Calls are
	// serialized; set it before the first claim runs.
	Progress func(string)
	// Workers caps concurrent simulations; <= 0 uses GOMAXPROCS.
	Workers int
	// Manifest, when non-empty, appends a JSONL manifest entry per run;
	// Resume loads it first and skips runs already recorded (see
	// internal/batch).
	Manifest string
	Resume   bool

	once     sync.Once
	exec     *batch.Executor
	manifest *batch.Manifest
	initErr  error
}

// NewEnv returns an empty environment.
func NewEnv(seed int64, fast bool) *Env {
	return &Env{Seed: seed, Fast: fast}
}

// init builds the executor on first use, after the caller has had the
// chance to set Progress, Workers, and the manifest fields.
func (e *Env) init() {
	opt := batch.Options{Workers: e.Workers, Progress: batch.NewSink(e.Progress)}
	if e.Manifest != "" {
		if e.Resume {
			resume, err := batch.LoadManifest(e.Manifest)
			if err != nil {
				e.initErr = err
				return
			}
			opt.Resume = resume
		}
		m, err := batch.CreateManifest(e.Manifest)
		if err != nil {
			e.initErr = err
			return
		}
		e.manifest = m
		opt.Manifest = m
	}
	e.exec = batch.NewExecutor(context.Background(), opt)
}

// Close flushes the manifest, if one was attached.
func (e *Env) Close() error {
	e.once.Do(e.init)
	if e.manifest != nil {
		return e.manifest.Close()
	}
	return e.initErr
}

// run executes (or returns the cached) simulation for cfg. A simulation
// failure is fatal to the claim checking it (the configs are fixed and
// known-valid); CheckAll confines the resulting panic to that claim's
// verdict.
func (e *Env) run(cfg scenario.Config) *runner.Results {
	e.once.Do(e.init)
	if e.initErr != nil {
		panic(e.initErr)
	}
	r, err := e.exec.Run(fmt.Sprintf("%v dur=%v", cfg, cfg.Duration), cfg)
	if err != nil {
		panic(fmt.Errorf("claims: %v: %w", cfg, err))
	}
	return r
}

// CheckAll evaluates the claims, fanning the checks across workers
// goroutines (<= 0 uses the Env's worker count) while keeping verdicts
// in claim order. Claims overlap heavily in the simulations they need;
// the Env deduplicates those, so claim-level parallelism costs no
// duplicate runs. A claim whose check panics fails with the panic as its
// detail instead of taking down the whole checklist.
func CheckAll(e *Env, claims []Claim, workers int) []Verdict {
	if workers <= 0 {
		workers = e.Workers
	}
	if workers <= 0 || workers > len(claims) {
		workers = len(claims)
	}
	verdicts := make([]Verdict, len(claims))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				verdicts[i] = checkOne(e, claims[i])
			}
		}()
	}
	for i := range claims {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return verdicts
}

// checkOne runs one claim with panic isolation.
func checkOne(e *Env, c Claim) (v Verdict) {
	defer func() {
		if r := recover(); r != nil {
			v = Verdict{Pass: false, Detail: fmt.Sprintf("check panicked: %v", r)}
		}
	}()
	return c.Check(e)
}

// base is the paper's common setup.
func (e *Env) base(p scenario.ProtocolKind, speed float64, hosts int, duration float64) scenario.Config {
	cfg := scenario.Default(p)
	cfg.MaxSpeedMS = speed
	cfg.Hosts = hosts
	cfg.Duration = duration
	cfg.Seed = e.Seed
	return cfg
}

// lifetimeHorizon is long enough for all alive-fraction claims.
func (e *Env) lifetimeHorizon() float64 {
	if e.Fast {
		return 700
	}
	return 900
}

func pass(format string, args ...any) Verdict {
	return Verdict{Pass: true, Detail: fmt.Sprintf(format, args...)}
}

func fail(format string, args ...any) Verdict {
	return Verdict{Pass: false, Detail: fmt.Sprintf(format, args...)}
}

// All returns the paper's claims in evaluation order.
func All() []Claim {
	return []Claim{
		{
			ID:        "grid-dies-590",
			Statement: `"The network that runs GRID ... is down when the simulation time = 590 seconds" (Fig. 4)`,
			Check: func(e *Env) Verdict {
				r := e.run(e.base(scenario.GRID, 1, 100, e.lifetimeHorizon()))
				first := r.FirstDeathAt
				at650 := r.Collector.Alive.At(650)
				if first >= 450 && first <= 600 && at650 <= 0.05 {
					return pass("first death %.0f s, %.0f%% alive at 650 s", first, 100*at650)
				}
				return fail("first death %.0f s, %.0f%% alive at 650 s", first, 100*at650)
			},
		},
		{
			ID:        "ecgrid-extends-lifetime",
			Statement: `"Both ECGRID and GAF prolong the network lifetime" (Fig. 4)`,
			Check: func(e *Env) Verdict {
				gr := e.run(e.base(scenario.GRID, 1, 100, e.lifetimeHorizon()))
				ec := e.run(e.base(scenario.ECGRID, 1, 100, e.lifetimeHorizon()))
				gaf := e.run(e.base(scenario.GAF, 1, 100, e.lifetimeHorizon()))
				g, c, f := gr.Collector.Alive.At(650), ec.Collector.Alive.At(650), gaf.Collector.Alive.At(650)
				if c > g+0.3 && f > g+0.3 {
					return pass("alive at 650 s: GRID %.2f, ECGRID %.2f, GAF %.2f", g, c, f)
				}
				return fail("alive at 650 s: GRID %.2f, ECGRID %.2f, GAF %.2f", g, c, f)
			},
		},
		{
			ID:        "gaf-slightly-above-ecgrid",
			Statement: `"GAF is more energy-conserving than ECGRID ... 85% and 81% of hosts are alive for GAF and ECGRID" at 1 m/s (Fig. 4a)`,
			Check: func(e *Env) Verdict {
				ec := e.run(e.base(scenario.ECGRID, 1, 100, e.lifetimeHorizon()))
				gaf := e.run(e.base(scenario.GAF, 1, 100, e.lifetimeHorizon()))
				c, f := ec.Collector.Alive.At(700), gaf.Collector.Alive.At(700)
				if f >= c {
					return pass("alive at 700 s: GAF %.2f ≥ ECGRID %.2f", f, c)
				}
				return fail("alive at 700 s: GAF %.2f < ECGRID %.2f", f, c)
			},
		},
		{
			ID:        "aen-gap",
			Statement: `"the aen for GRID is ... about 33% and 38% higher than that of ECGRID and GAF" (Fig. 5)`,
			Check: func(e *Env) Verdict {
				gr := e.run(e.base(scenario.GRID, 1, 100, e.lifetimeHorizon()))
				ec := e.run(e.base(scenario.ECGRID, 1, 100, e.lifetimeHorizon()))
				gaf := e.run(e.base(scenario.GAF, 1, 100, e.lifetimeHorizon()))
				at := 500.0
				g, c, f := gr.Collector.Aen.At(at), ec.Collector.Aen.At(at), gaf.Collector.Aen.At(at)
				rc, rf := g/c-1, g/f-1
				if rc > 0.2 && rc < 0.7 && rf > 0.2 && rf < 0.7 {
					return pass("GRID +%.0f%% vs ECGRID, +%.0f%% vs GAF at %g s (paper: +33%%/+38%%)",
						100*rc, 100*rf, at)
				}
				return fail("GRID +%.0f%% vs ECGRID, +%.0f%% vs GAF at %g s", 100*rc, 100*rf, at)
			},
		},
		{
			ID:        "aen-speed-invariant",
			Statement: `"These two Figs. have the similar curves" — aen barely changes between 1 and 10 m/s (Fig. 5)`,
			Check: func(e *Env) Verdict {
				slow := e.run(e.base(scenario.ECGRID, 1, 100, e.lifetimeHorizon()))
				quick := e.run(e.base(scenario.ECGRID, 10, 100, e.lifetimeHorizon()))
				a, b := slow.Collector.Aen.At(500), quick.Collector.Aen.At(500)
				if diff := b/a - 1; diff > -0.15 && diff < 0.15 {
					return pass("ECGRID aen at 500 s: %.3f (1 m/s) vs %.3f (10 m/s)", a, b)
				}
				return fail("ECGRID aen at 500 s: %.3f (1 m/s) vs %.3f (10 m/s)", a, b)
			},
		},
		{
			ID:        "delivery-high",
			Statement: `"the packet delivery rate exceeds 99% for all three protocols" (Fig. 7; see EXPERIMENTS.md for our honest gap)`,
			Check: func(e *Env) Verdict {
				d := 590.0
				if e.Fast {
					d = 300
				}
				g := e.run(e.base(scenario.GRID, 1, 100, d)).DeliveryRate
				c := e.run(e.base(scenario.ECGRID, 1, 100, d)).DeliveryRate
				f := e.run(e.base(scenario.GAF, 1, 100, d)).DeliveryRate
				// Shape check: all high, and ECGRID not materially below
				// the always-on GRID (sleeping costs no delivery).
				if g > 0.75 && c > 0.75 && f > 0.9 && c > g-0.1 {
					return pass("delivery: GRID %.3f, ECGRID %.3f, GAF %.3f", g, c, f)
				}
				return fail("delivery: GRID %.3f, ECGRID %.3f, GAF %.3f", g, c, f)
			},
		},
		{
			ID:        "latency-band",
			Statement: `"all three protocols have a similar average packet delivery latency, between 7.1 ms and 10.7 ms" at 1 m/s (Fig. 6; we compare medians)`,
			Check: func(e *Env) Verdict {
				d := 590.0
				if e.Fast {
					d = 300
				}
				// MedianLatency (not Collector.LatencyPercentile) so the
				// claim still measures after a manifest resume, where only
				// exported Results fields survive serialization.
				g := e.run(e.base(scenario.GRID, 1, 100, d)).MedianLatency * 1000
				c := e.run(e.base(scenario.ECGRID, 1, 100, d)).MedianLatency * 1000
				f := e.run(e.base(scenario.GAF, 1, 100, d)).MedianLatency * 1000
				if g < 30 && c < 30 && f < 30 && g > 1 && c > 1 && f > 1 {
					return pass("median latency: GRID %.1f ms, ECGRID %.1f ms, GAF %.1f ms", g, c, f)
				}
				return fail("median latency: GRID %.1f ms, ECGRID %.1f ms, GAF %.1f ms", g, c, f)
			},
		},
		{
			ID:        "density-helps-ecgrid",
			Statement: `"The network lifetime of our protocol increases with the host density" (Fig. 8)`,
			Check: func(e *Env) Verdict {
				lo := e.run(e.base(scenario.ECGRID, 1, 50, e.lifetimeHorizon()))
				hi := e.run(e.base(scenario.ECGRID, 1, 200, e.lifetimeHorizon()))
				at := e.lifetimeHorizon() - 10
				a, b := lo.Collector.Alive.At(at), hi.Collector.Alive.At(at)
				if b > a+0.1 {
					return pass("ECGRID alive at %g s: %.2f (n=50) vs %.2f (n=200)", at, a, b)
				}
				return fail("ECGRID alive at %g s: %.2f (n=50) vs %.2f (n=200)", at, a, b)
			},
		},
		{
			ID:        "density-ignores-grid",
			Statement: `"The network lifetime in GRID is observed to be the same for various host densities" (Fig. 8)`,
			Check: func(e *Env) Verdict {
				lo := e.run(e.base(scenario.GRID, 1, 50, e.lifetimeHorizon()))
				hi := e.run(e.base(scenario.GRID, 1, 200, e.lifetimeHorizon()))
				a, b := lo.FirstDeathAt, hi.FirstDeathAt
				if a > 0 && b > 0 && b-a < 50 && a-b < 50 {
					return pass("GRID first death: %.0f s (n=50) vs %.0f s (n=200)", a, b)
				}
				return fail("GRID first death: %.0f s (n=50) vs %.0f s (n=200)", a, b)
			},
		},
		{
			ID:        "span-density-comparison",
			Statement: `"the saved power is proportional to host density [for a location-aware scheme]. On the contrary, Span ... does not benefit from increasing host density" (§1)`,
			Check: func(e *Env) Verdict {
				h := e.lifetimeHorizon()
				at := h - 100
				spLo := e.run(e.base(scenario.SPAN, 1, 50, h)).Collector.Alive.At(at)
				spHi := e.run(e.base(scenario.SPAN, 1, 200, h)).Collector.Alive.At(at)
				ecLo := e.run(e.base(scenario.ECGRID, 1, 50, h)).Collector.Alive.At(at)
				ecHi := e.run(e.base(scenario.ECGRID, 1, 200, h)).Collector.Alive.At(at)
				spanFlat := spHi-spLo < 0.15 && spLo-spHi < 0.15
				ecGrows := ecHi > ecLo+0.15
				if spanFlat && ecGrows {
					return pass("alive at %g s, n=50→200: Span %.2f→%.2f (flat), ECGRID %.2f→%.2f (grows)",
						at, spLo, spHi, ecLo, ecHi)
				}
				return fail("alive at %g s, n=50→200: Span %.2f→%.2f, ECGRID %.2f→%.2f",
					at, spLo, spHi, ecLo, ecHi)
			},
		},
		{
			ID:        "speed-improves-balance",
			Statement: `"a higher roaming speed corresponds to better load balance between hosts" — first deaths come later at 10 m/s (Fig. 8)`,
			Check: func(e *Env) Verdict {
				slow := e.run(e.base(scenario.ECGRID, 1, 200, e.lifetimeHorizon()))
				quick := e.run(e.base(scenario.ECGRID, 10, 200, e.lifetimeHorizon()))
				a, b := slow.Collector.Alive.At(620), quick.Collector.Alive.At(620)
				if b >= a-0.02 {
					return pass("ECGRID n=200 alive at 620 s: %.2f (1 m/s) vs %.2f (10 m/s)", a, b)
				}
				return fail("ECGRID n=200 alive at 620 s: %.2f (1 m/s) vs %.2f (10 m/s)", a, b)
			},
		},
	}
}
