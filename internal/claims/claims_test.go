package claims

import (
	"strings"
	"testing"
)

func TestClaimsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range All() {
		if c.ID == "" || c.Statement == "" || c.Check == nil {
			t.Fatalf("malformed claim %+v", c)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate claim id %q", c.ID)
		}
		seen[c.ID] = true
	}
	if len(seen) < 10 {
		t.Fatalf("only %d claims", len(seen))
	}
}

func TestEnvCachesRuns(t *testing.T) {
	e := NewEnv(1, true)
	runs := 0
	e.Progress = func(string) { runs++ }
	cfg := e.base("ecgrid", 1, 20, 30)
	e.run(cfg)
	e.run(cfg)
	if runs != 1 {
		t.Fatalf("cache miss: %d runs", runs)
	}
}

func TestAllClaimsPassFast(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many simulations")
	}
	e := NewEnv(1, true)
	// CheckAll fans the claims out across workers; the shared runs
	// deduplicate in the Env's executor. Verdicts stay in claim order.
	verdicts := CheckAll(e, All(), 4)
	for i, c := range All() {
		if v := verdicts[i]; !v.Pass {
			t.Errorf("claim %s failed: %s\nmeasured: %s", c.ID, c.Statement, v.Detail)
		}
	}
}

func TestCheckAllPanicIsolation(t *testing.T) {
	claims := []Claim{
		{ID: "ok", Statement: "fine", Check: func(*Env) Verdict { return Verdict{Pass: true, Detail: "ok"} }},
		{ID: "boom", Statement: "panics", Check: func(*Env) Verdict { panic("exploded") }},
		{ID: "ok2", Statement: "fine", Check: func(*Env) Verdict { return Verdict{Pass: true, Detail: "ok"} }},
	}
	v := CheckAll(NewEnv(1, true), claims, 3)
	if !v[0].Pass || !v[2].Pass {
		t.Fatalf("healthy claims failed: %+v", v)
	}
	if v[1].Pass || !strings.Contains(v[1].Detail, "exploded") {
		t.Fatalf("panicking claim verdict = %+v", v[1])
	}
}
