package claims

import "testing"

func TestClaimsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range All() {
		if c.ID == "" || c.Statement == "" || c.Check == nil {
			t.Fatalf("malformed claim %+v", c)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate claim id %q", c.ID)
		}
		seen[c.ID] = true
	}
	if len(seen) < 10 {
		t.Fatalf("only %d claims", len(seen))
	}
}

func TestEnvCachesRuns(t *testing.T) {
	e := NewEnv(1, true)
	runs := 0
	e.Progress = func(string) { runs++ }
	cfg := e.base("ecgrid", 1, 20, 30)
	e.run(cfg)
	e.run(cfg)
	if runs != 1 {
		t.Fatalf("cache miss: %d runs", runs)
	}
}

func TestAllClaimsPassFast(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many simulations")
	}
	e := NewEnv(1, true)
	for _, c := range All() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			if v := c.Check(e); !v.Pass {
				t.Errorf("claim failed: %s\nmeasured: %s", c.Statement, v.Detail)
			}
		})
	}
}
