// Package hostid defines the host identifier shared by every layer of the
// simulator. The paper assumes each host has a unique ID (an IP or MAC
// address) that doubles as its RAS paging sequence and as the final
// tie-break in gateway election.
package hostid

import "fmt"

// ID uniquely identifies a mobile host. Smaller IDs win election
// tie-breaks, matching the paper's "smallest ID" rule.
type ID int

// Broadcast is the destination pseudo-ID for frames addressed to every
// host in radio range.
const Broadcast ID = -1

// None marks an absent host reference (for example, "no gateway known").
const None ID = -2

// String renders the ID, with the pseudo-IDs named.
func (id ID) String() string {
	switch id {
	case Broadcast:
		return "broadcast"
	case None:
		return "none"
	default:
		return fmt.Sprintf("host-%d", int(id))
	}
}

// IsUnicast reports whether the ID names a single concrete host.
func (id ID) IsUnicast() bool { return id >= 0 }
