package hostid

import "testing"

func TestString(t *testing.T) {
	cases := []struct {
		id   ID
		want string
	}{
		{0, "host-0"},
		{42, "host-42"},
		{Broadcast, "broadcast"},
		{None, "none"},
	}
	for _, c := range cases {
		if got := c.id.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int(c.id), got, c.want)
		}
	}
}

func TestIsUnicast(t *testing.T) {
	if !ID(0).IsUnicast() || !ID(7).IsUnicast() {
		t.Error("concrete IDs not unicast")
	}
	if Broadcast.IsUnicast() || None.IsUnicast() {
		t.Error("pseudo-IDs reported unicast")
	}
}

func TestPseudoIDsAreDistinct(t *testing.T) {
	if Broadcast == None {
		t.Error("Broadcast and None collide")
	}
	if Broadcast >= 0 || None >= 0 {
		t.Error("pseudo-IDs overlap the concrete ID space")
	}
}
