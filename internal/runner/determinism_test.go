package runner

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ecgrid/internal/faults"
	"ecgrid/internal/scenario"
	"ecgrid/internal/scengen"
	"ecgrid/internal/trace"
)

func mustPreset(name string, hosts int, areaSize, duration float64) *faults.Plan {
	p, err := faults.Preset(name, hosts, areaSize, duration)
	if err != nil {
		panic(err)
	}
	return p
}

// fingerprint runs cfg once and renders everything the run measured —
// every counter, every sampled point (as exact hex floats), and the full
// radio/delivery trace — into one canonical string. Two runs of the same
// scenario in the same process must produce byte-identical fingerprints;
// anything less means some decision depended on map hash order, global
// randomness, or the wall clock.
func fingerprint(cfg scenario.Config) string {
	rec := trace.NewRecorder(1 << 18)
	cfg.Trace = rec
	res := Run(cfg)

	hex := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	var b strings.Builder
	fmt.Fprintf(&b, "cfg=%s\n", cfg.String())
	fmt.Fprintf(&b, "sent=%d delivered=%d dups=%d deaths=%d\n",
		res.Sent, res.Delivered, res.Duplicates, res.Deaths)
	fmt.Fprintf(&b, "rate=%s mean=%s median=%s max=%s\n",
		hex(res.DeliveryRate), hex(res.MeanLatency), hex(res.MedianLatency), hex(res.MaxLatency))
	fmt.Fprintf(&b, "firstdeath=%s lastalive=%s\n", hex(res.FirstDeathAt), hex(res.LastAlive))
	fmt.Fprintf(&b, "faults gwcrash=%d reelect=%d mreelect=%s mrepair=%s in=%s out=%s pagesdropped=%d\n",
		res.GatewayCrashes, res.Reelections,
		hex(res.MeanReelectionLatency), hex(res.MeanRouteRepairTime),
		hex(res.InFaultDeliveryRate), hex(res.OutFaultDeliveryRate), res.PagesDropped)
	fmt.Fprintf(&b, "radio=%+v\n", res.Radio)
	for _, p := range res.Alive {
		fmt.Fprintf(&b, "alive %s %s\n", hex(p.T), hex(p.V))
	}
	for _, p := range res.Aen {
		fmt.Fprintf(&b, "aen %s %s\n", hex(p.T), hex(p.V))
	}
	kinds := make([]string, 0, len(res.PerKind))
	for k := range res.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "kind %s %+v\n", k, res.PerKind[k])
	}
	stats := make([]string, 0, len(res.Protocol))
	for k := range res.Protocol {
		stats = append(stats, k)
	}
	sort.Strings(stats)
	for _, k := range stats {
		fmt.Fprintf(&b, "stat %s %d\n", k, res.Protocol[k])
	}
	fmt.Fprintf(&b, "trace total=%d\n", rec.Total())
	if err := trace.Write(&b, rec.Entries()); err != nil {
		panic(err)
	}
	return b.String()
}

// firstDiff locates the first differing line of two fingerprints, so a
// failure points at the event where the runs diverged instead of dumping
// megabytes of trace.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  run1: %s\n  run2: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestRunTwiceDeterminism executes the same scenario twice inside one
// test binary and requires byte-identical metrics and trace output. Map
// iteration order is re-randomized on every range statement, so an
// order-sensitive loop in a hot path fails this test directly — even
// without cmd/simlint in the loop. Run with -count=2 it also catches
// cross-execution divergence via the per-process map hash seed.
func TestRunTwiceDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  scenario.Config
	}{
		{"ecgrid", func() scenario.Config {
			cfg := scenario.Default(scenario.ECGRID)
			cfg.Hosts = 50
			cfg.Duration = 150
			cfg.Seed = 7
			return cfg
		}()},
		{"span", func() scenario.Config {
			cfg := scenario.Default(scenario.SPAN)
			cfg.Hosts = 30
			cfg.Duration = 80
			cfg.Seed = 11
			return cfg
		}()},
		// Faulted runs exercise every injection path — crash/recover,
		// battery shock, jamming, paging loss, GPS noise — under the same
		// byte-identical requirement.
		{"ecgrid-faulted", func() scenario.Config {
			cfg := scenario.Default(scenario.ECGRID)
			cfg.Hosts = 40
			cfg.Duration = 120
			cfg.Seed = 13
			cfg.Faults = mustPreset("mixed", cfg.Hosts, cfg.AreaSize, cfg.Duration)
			return cfg
		}()},
		{"span-faulted", func() scenario.Config {
			cfg := scenario.Default(scenario.SPAN)
			cfg.Hosts = 30
			cfg.Duration = 80
			cfg.Seed = 5
			cfg.Faults = mustPreset("churn", cfg.Hosts, cfg.AreaSize, cfg.Duration)
			return cfg
		}()},
		// Generated scenarios cover every scengen axis: clustered
		// deployment + street mobility + bursty traffic, then group
		// mobility + request/response + an obstacle map. Byte-identical
		// twice is the acceptance bar for the whole generator.
		{"gen-manhattan-burst", func() scenario.Config {
			cfg := scenario.Default(scenario.ECGRID)
			cfg.Hosts = 40
			cfg.Duration = 120
			cfg.Seed = 17
			cfg.Gen = &scengen.Spec{
				Deployment: &scengen.Deployment{Kind: scengen.DeployClustered, Clusters: 4, StdDevM: 120},
				Mobility:   &scengen.Mobility{Kind: scengen.MobilityManhattan, BlockM: 200},
				Traffic:    &scengen.Traffic{Kind: scengen.TrafficOnOff, MeanOnS: 10, MeanOffS: 15},
			}
			return cfg
		}()},
		{"gen-group-reqresp-obstacles", func() scenario.Config {
			cfg := scenario.Default(scenario.ECGRID)
			cfg.Hosts = 40
			cfg.Duration = 120
			cfg.Seed = 19
			cfg.Gen = &scengen.Spec{
				Deployment: &scengen.Deployment{Kind: scengen.DeployGrid, JitterM: 30},
				Mobility:   &scengen.Mobility{Kind: scengen.MobilityGroup, GroupSize: 5, RadiusM: 100},
				Traffic:    &scengen.Traffic{Kind: scengen.TrafficReqResp, RespBytes: 256, RespDelayS: 0.05},
				Propagation: &scengen.Propagation{Obstacles: []scengen.Obstacle{
					{MinX: 450, MinY: 0, MaxX: 480, MaxY: 700, Atten: 0.6},
					{MinX: 100, MinY: 850, MaxX: 900, MaxY: 880, Atten: 1},
				}},
			}
			return cfg
		}()},
		// The sharded engine must be exactly as deterministic as the
		// serial path it wraps: worker scheduling, the phase barrier, and
		// ownership handoffs may not leak into results. Under -race and
		// -count=2 (CI) this also stresses the pool's synchronization.
		{"ecgrid-shards4", func() scenario.Config {
			cfg := scenario.Default(scenario.ECGRID)
			cfg.Hosts = 100
			cfg.Duration = 90
			cfg.Seed = 23
			cfg.Shards = 4
			return cfg
		}()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			run1 := fingerprint(c.cfg)
			run2 := fingerprint(c.cfg)
			if run1 != run2 {
				t.Fatalf("same scenario, same process, different outcome — first divergence:\n%s", firstDiff(run1, run2))
			}
		})
	}
}
