package runner

import (
	"fmt"
	"testing"

	"ecgrid/internal/core"
	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/mobility"
	"ecgrid/internal/node"
	"ecgrid/internal/radio"
	"ecgrid/internal/ras"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// TestECGRIDSoakInvariants runs a full-size ECGRID network and samples
// protocol-level invariants every second:
//
//   - gateway uniqueness: cells containing awake hosts converge to exactly
//     one gateway (transient violations during handovers are allowed, but
//     must stay rare);
//   - no awake host is ever without a role;
//   - accounting: unique deliveries never exceed submissions;
//   - energy conservation holds for every battery at every sample.
//
// It is the heavyweight randomized backstop behind the targeted tests;
// `-short` skips it.
func TestECGRIDSoakInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	engine := sim.NewEngine()
	rng := sim.NewRNG(99)
	area := geom.NewRect(geom.Point{}, geom.Point{X: 1000, Y: 1000})
	part := grid.NewPartition(area, 100)
	rcfg := radio.DefaultConfig()
	channel := radio.NewChannel(engine, rng, rcfg)
	bus := ras.NewBus(engine, part, rcfg.Range, ras.DefaultLatency)

	const n = 100
	hosts := make([]*node.Host, n)
	protos := make([]*core.Protocol, n)
	delivered := map[[2]int]bool{}
	for i := 0; i < n; i++ {
		mob := mobility.NewRandomWaypoint(area,
			geom.Point{X: rng.Uniform(sim.StreamPlacement, 0, 1000), Y: rng.Uniform(sim.StreamPlacement, 0, 1000)},
			1, 0, rng.Stream(fmt.Sprintf(sim.StreamMobility, i)))
		h := node.New(node.Config{
			ID: hostid.ID(i), Engine: engine, RNG: rng, Channel: channel,
			Bus: bus, Partition: part, Mobility: mob,
			Battery: energy.NewBattery(energy.PaperModel(), 500),
		})
		p := core.New(h, core.DefaultOptions())
		p.OnDeliver = func(pkt *routing.DataPacket) { delivered[[2]int{pkt.Flow, pkt.Seq}] = true }
		h.SetProtocol(p)
		hosts[i], protos[i] = h, p
	}
	for _, h := range hosts {
		h.Start()
	}

	// Ten 1 pkt/s flows.
	sent := 0
	for f := 0; f < 10; f++ {
		f := f
		src, dst := f, 50+f
		seq := 0
		sim.NewTicker(engine, 1, 5+0.1*float64(f), func() {
			if hosts[src].Dead() {
				return
			}
			seq++
			sent++
			protos[src].SubmitData(&routing.DataPacket{
				Flow: f, Seq: seq, Src: hostid.ID(src), Dst: hostid.ID(dst),
				Bytes: 512, SentAt: engine.Now(),
			})
		})
	}

	samples, doubleGW, awakeNoRole := 0, 0, 0
	sim.NewTicker(engine, 1, 0.47, func() {
		samples++
		perCell := map[grid.Coord]int{}
		for i, p := range protos {
			if hosts[i].Dead() {
				continue
			}
			switch p.Role() {
			case "gateway":
				perCell[hosts[i].Cell()]++
			case "member", "sleeping":
			default:
				awakeNoRole++
			}
			// Energy conservation at every sample.
			b := hosts[i].Battery()
			total := b.Consumed(engine.Now()) + b.Remaining(engine.Now())
			if total < 499.9999 || total > 500.0001 {
				t.Fatalf("energy conservation violated on host %d: %v", i, total)
			}
		}
		for _, c := range perCell {
			if c > 1 {
				doubleGW++
			}
		}
	})

	engine.Run(400)

	if samples == 0 {
		t.Fatal("sampler never ran")
	}
	if awakeNoRole != 0 {
		t.Fatalf("%d role-less samples", awakeNoRole)
	}
	// Handsovers make double-gateway cells possible transiently; across
	// 400 samples of ~60 occupied cells they must stay rare.
	if frac := float64(doubleGW) / float64(samples); frac > 0.5 {
		t.Fatalf("double-gateway cells in %.1f%% of samples", 100*frac)
	}
	if len(delivered) > sent {
		t.Fatalf("delivered %d unique packets of %d sent", len(delivered), sent)
	}
	if len(delivered) < sent/2 {
		t.Fatalf("delivered only %d of %d", len(delivered), sent)
	}
}
