// Package runner assembles and executes whole simulations: it builds the
// substrates (engine, channel, RAS bus, mobility, batteries), attaches
// the protocol under test to every host, wires the CBR traffic and the
// metrics collector, runs the event loop, and returns the measured
// results.
package runner

import (
	"encoding/json"
	"fmt"

	"ecgrid/internal/core"
	"ecgrid/internal/energy"
	"ecgrid/internal/faults"
	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/metrics"
	"ecgrid/internal/mobility"
	"ecgrid/internal/node"
	"ecgrid/internal/protocols/gaf"
	"ecgrid/internal/protocols/span"
	"ecgrid/internal/radio"
	"ecgrid/internal/ras"
	"ecgrid/internal/routing"
	"ecgrid/internal/scenario"
	"ecgrid/internal/scengen"
	"ecgrid/internal/shard"
	"ecgrid/internal/sim"
	"ecgrid/internal/traffic"
)

// Results is everything one run measures.
type Results struct {
	Cfg scenario.Config

	// Alive is the fraction of energy-limited hosts still alive, over
	// time; Aen the per-host consumed energy as a fraction of the
	// initial charge (the paper's Eq. 2, normalized).
	Alive, Aen []struct{ T, V float64 }

	Sent, Delivered, Duplicates int
	DeliveryRate                float64
	MeanLatency, MaxLatency     float64
	// MedianLatency is the 0.5-quantile of delivery delays, exported so
	// it survives manifest serialization (internal/batch) where the
	// collector's raw latency samples do not.
	MedianLatency float64

	Deaths       int
	FirstDeathAt float64 // -1 if none
	LastAlive    float64 // final alive fraction

	Radio radio.Counters
	// FrameLeaks is the pooled-frame lease imbalance after radio
	// teardown: frames minted by NewFrame that neither returned to the
	// pool nor remained in a channel structure. Always zero in a
	// leak-free build (see TestFig8aFrameLeakCanary).
	FrameLeaks int
	// PerKind splits the air usage by frame kind.
	PerKind map[string]radio.KindCount
	// Protocol aggregates per-host protocol counters by name.
	Protocol map[string]uint64

	// Recovery observables, populated when the scenario injects faults.
	// Plain fields (like MedianLatency) so they survive batch manifest
	// serialization. The rates and means are -1 when unmeasurable: no
	// in/out-window traffic, no replaced gateway, no post-fault delivery.
	GatewayCrashes        int
	Reelections           int
	MeanReelectionLatency float64
	MeanRouteRepairTime   float64
	InFaultDeliveryRate   float64
	OutFaultDeliveryRate  float64
	PagesDropped          uint64

	// Shard is the parallel engine's execution telemetry when the run
	// used Cfg.Shards ≥ 2; nil on the serial path. Runtime-only and
	// excluded from the canonical encoding: the measurements of a
	// sharded run are byte-identical to the serial reference by
	// construction, so its stored results differ only by Cfg.Shards.
	Shard *shard.Stats `json:"-"`

	// RxCache is the receiver-plane cache's telemetry (hits, misses,
	// rechecks). Runtime-only and excluded from the canonical encoding
	// for the same reason as Shard: cached runs are byte-identical to
	// the NoRxCache reference, so stored results must not differ by
	// cache behavior.
	RxCache radio.RxCacheStats `json:"-"`

	Collector *metrics.Collector
}

// CanonicalJSON returns the results' canonical encoding: compact JSON
// with a single trailing newline. The encoding is stable — Results is a
// plain struct (fields in declaration order) whose only maps (PerKind,
// Protocol) marshal with sorted keys — so it can serve as the on-disk
// format of a content-addressed store: encode, decode, and re-encode
// produce identical bytes, which is what lets a cache hit be
// byte-identical to the run that populated it (internal/store).
func (r *Results) CanonicalJSON() ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("runner: encode results: %w", err)
	}
	return append(b, '\n'), nil
}

// relaySender indirects a host's traffic entry point so CBR flows keep
// working across crash/recovery: recovery installs a fresh protocol
// instance, and the relay re-points cur at it.
type relaySender struct{ cur traffic.Sender }

func (r *relaySender) SubmitData(pkt *routing.DataPacket) {
	if r.cur != nil {
		r.cur.SubmitData(pkt)
	}
}

// Run executes the scenario and returns its results. It panics on an
// invalid configuration (catch with Validate first if the config is
// user-supplied).
func Run(cfg scenario.Config) *Results {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sched := sim.Calendar
	if cfg.HeapScheduler {
		sched = sim.Heap
	}
	engine := sim.NewEngineWith(sched)
	rng := sim.NewRNG(cfg.Seed)
	gen := cfg.Gen
	if gen.Empty() {
		gen = nil
	}
	area := geom.NewRect(geom.Point{}, geom.Point{X: cfg.AreaSize, Y: cfg.AreaSize})
	part := grid.NewPartition(area, cfg.GridSize)
	channel := radio.NewChannel(engine, rng, cfg.Radio)
	bus := ras.NewBus(engine, part, cfg.Radio.Range, ras.DefaultLatency)
	col := metrics.New()
	if cfg.Trace != nil {
		cfg.Trace.AttachRadio(channel)
	}

	emodel := energy.PaperModel()

	type hostRec struct {
		host     *node.Host
		snd      *relaySender
		limited  bool // counts toward alive fraction and aen
		statsFn  func() map[string]uint64
		prev     map[string]uint64 // counters of protocols lost to crashes
		bat      *energy.Battery
		endpoint bool
		gw       func() (grid.Coord, bool) // current grid + gateway-ness (core only)
	}

	total := cfg.Hosts
	if cfg.Protocol == scenario.GAF {
		total += cfg.EndpointHosts
	}
	recs := make([]hostRec, 0, total)

	// deliver is every protocol's OnDeliver target: metrics first, then
	// the request/response dispatch (bound later, once traffic exists —
	// nil when the scenario has no reqresp flows).
	var rrDispatch func(*routing.DataPacket)
	deliver := func(pkt *routing.DataPacket) {
		col.PacketDelivered(pkt, engine.Now())
		if rrDispatch != nil {
			rrDispatch(pkt)
		}
	}

	// buildProtocol installs a fresh protocol instance on rec's host —
	// at construction, and again on recovery from an injected crash
	// (volatile protocol state does not survive a power cycle). Counters
	// of the instance being replaced are folded into rec.prev first.
	buildProtocol := func(rec *hostRec) {
		if rec.statsFn != nil {
			if rec.prev == nil {
				rec.prev = make(map[string]uint64)
			}
			for k, v := range rec.statsFn() {
				rec.prev[k] += v
			}
		}
		h := rec.host
		rec.gw = nil
		switch cfg.Protocol {
		case scenario.ECGRID, scenario.GRID:
			opt := core.DefaultOptions()
			if cfg.Protocol == scenario.GRID {
				opt = core.GridOptions()
			}
			if cfg.ECGRIDOptions != nil {
				opt = *cfg.ECGRIDOptions
			}
			p := core.New(h, opt)
			p.OnDeliver = deliver
			p.OnGateway = col.GatewayDeclared
			h.SetProtocol(p)
			rec.snd.cur = p
			rec.gw = func() (grid.Coord, bool) { return p.Grid(), p.IsGateway() }
			rec.statsFn = func() map[string]uint64 { return coreStats(&p.Stats) }
		case scenario.SPAN:
			p := span.New(h, span.DefaultOptions())
			p.OnDeliver = deliver
			h.SetProtocol(p)
			rec.snd.cur = p
			rec.statsFn = func() map[string]uint64 { return spanStats(&p.Stats) }
		case scenario.GAF, scenario.AODV:
			opt := gaf.DefaultOptions()
			if cfg.GAFOptions != nil {
				opt = *cfg.GAFOptions
			}
			var p *gaf.Protocol
			if cfg.Protocol == scenario.AODV {
				p = gaf.NewAODV(h, opt)
			} else {
				p = gaf.New(h, opt, rec.endpoint)
			}
			p.OnDeliver = deliver
			h.SetProtocol(p)
			rec.snd.cur = p
			rec.statsFn = func() map[string]uint64 { return gafStats(&p.Stats) }
		}
	}

	place := func(i int) geom.Point {
		return geom.Point{
			X: rng.Uniform(sim.StreamPlacement, 0, cfg.AreaSize),
			Y: rng.Uniform(sim.StreamPlacement, 0, cfg.AreaSize),
		}
	}
	if gen != nil && gen.Deployment != nil {
		place = scengen.NewPlacer(gen.Deployment, area, total, rng)
	}
	var mobFactory *scengen.MobilityFactory
	if gen != nil && gen.Mobility != nil {
		mobFactory = scengen.NewMobilityFactory(gen.Mobility, area, cfg.MaxSpeedMS, cfg.PauseTime, rng)
	}

	starts := make([]geom.Point, 0, total)
	for i := 0; i < total; i++ {
		endpoint := cfg.Protocol == scenario.GAF && i >= cfg.Hosts
		start := place(i)
		starts = append(starts, start)
		var mob mobility.Model
		if mobFactory != nil {
			mob = mobFactory.Model(i, start)
		} else {
			switch cfg.Mobility {
			case "direction":
				// Epoch sized so direction changes come at waypoint-like
				// intervals for the area.
				epoch := cfg.AreaSize / (2 * cfg.MaxSpeedMS)
				mob = mobility.NewRandomDirection(area, start, cfg.MaxSpeedMS, epoch,
					cfg.PauseTime, rng.Stream(fmt.Sprintf(sim.StreamMobility, i)))
			default:
				mob = mobility.NewRandomWaypoint(area, start, cfg.MaxSpeedMS, cfg.PauseTime,
					rng.Stream(fmt.Sprintf(sim.StreamMobility, i)))
			}
		}
		var bat *energy.Battery
		if endpoint {
			bat = energy.NewInfiniteBattery(emodel)
		} else {
			bat = energy.NewBattery(emodel, cfg.InitialEnergyJ)
		}
		h := node.New(node.Config{
			ID: hostid.ID(i), Engine: engine, RNG: rng, Channel: channel,
			Bus: bus, Partition: part, Mobility: mob, Battery: bat,
		})
		h.Died = func(id hostid.ID, at float64) { col.HostDied(at) }

		recs = append(recs, hostRec{
			host: h, snd: &relaySender{}, limited: !endpoint, bat: bat, endpoint: endpoint,
		})
		buildProtocol(&recs[len(recs)-1])
	}
	for i := range recs {
		recs[i].host.Start()
	}

	// Propagation map: obstacles shrink the effective radio range of
	// any transmission whose sight line crosses them. Pure geometry —
	// no RNG draw — so runs with and without a map consume identical
	// randomness from every stream.
	if gen != nil && gen.Propagation != nil {
		obstacles := scengen.NewObstacleMap(gen.Propagation)
		baseRange := cfg.Radio.Range
		channel.Interceptor = func(f *radio.Frame, from, to geom.Point) bool {
			return obstacles.Deliverable(baseRange, from, to)
		}
	}

	// Fault injection: translate the plan into per-host targets and
	// channel/bus hooks. Everything runs inside engine events, so the
	// determinism contract holds with a plan active.
	if plan := cfg.Faults; plan != nil && !plan.Empty() {
		ws := plan.Windows(cfg.Duration)
		mws := make([]metrics.Window, len(ws))
		for i, w := range ws {
			mws[i] = metrics.Window{From: w.From, Until: w.Until}
		}
		col.SetFaultWindows(mws)

		targets := make([]faults.Target, len(recs))
		for i := range recs {
			rec := &recs[i]
			h := rec.host
			targets[i] = faults.Target{
				Crash: func() {
					if rec.gw != nil && !h.Dead() && !h.Crashed() {
						if g, isGW := rec.gw(); isGW {
							col.GatewayCrashed(g, engine.Now())
						}
					}
					h.Crash()
				},
				Recover: func() {
					if h.Dead() || !h.Crashed() {
						return
					}
					buildProtocol(rec) // cold rejoin: all volatile state lost
					h.Recover()
				},
				Shock: h.DrainBattery,
				IsGateway: func() bool {
					if rec.gw == nil || h.Dead() || h.Crashed() {
						return false
					}
					_, isGW := rec.gw()
					return isGW
				},
				SetGPSNoise: h.SetGPSNoise,
			}
		}
		inj := faults.NewInjector(engine, rng, plan, targets)
		inj.OnFault = func(kind string, host int, at float64) {
			switch kind {
			case "crash", "shock", "jam-on", "paging-on", "gps-on":
				col.FaultInjected(at)
			}
		}
		// Compose with an obstacle map already installed above: the
		// geometric veto runs first, then the jamming draw (in that
		// order, so a shadowed reception never consumes jam randomness).
		prev := channel.Interceptor
		channel.Interceptor = func(f *radio.Frame, from, to geom.Point) bool {
			if prev != nil && !prev(f, from, to) {
				return false
			}
			return !inj.FrameJammed(from, to)
		}
		bus.DropHook = func(hostid.ID) bool { return inj.PageDropped() }
		inj.Start()
	}

	// Traffic: flow endpoints. Under GAF Model 1 the flows run between
	// the infinite-energy endpoint hosts; under Model 2 (ECGRID/GRID)
	// sources and destinations are random energy-limited hosts. A
	// generator traffic axis reshapes each flow (bursty on/off or
	// request/response) but keeps the endpoint draws and phases on the
	// same streams, so only the emission pattern changes.
	type stopper interface{ Stop() }
	flows := make([]stopper, 0, cfg.Flows)
	var rrs []*traffic.ReqResp
	for f := 0; f < cfg.Flows; f++ {
		var srcIdx, dstIdx int
		if cfg.Protocol == scenario.GAF {
			srcIdx = cfg.Hosts + f%cfg.EndpointHosts
			dstIdx = cfg.Hosts + (f+cfg.EndpointHosts/2)%cfg.EndpointHosts
			if dstIdx == srcIdx {
				dstIdx = cfg.Hosts + (srcIdx-cfg.Hosts+1)%cfg.EndpointHosts
			}
		} else {
			srcIdx = rng.Intn(sim.StreamFlows, total)
			dstIdx = rng.Intn(sim.StreamFlows, total)
			for dstIdx == srcIdx {
				dstIdx = rng.Intn(sim.StreamFlows, total)
			}
		}
		src, dst := recs[srcIdx], recs[dstIdx]
		onSend := func(pkt *routing.DataPacket) { col.PacketSent(pkt) }
		srcHost, dstHost := src.host, dst.host
		srcAlive := func() bool { return !srcHost.Dead() && !srcHost.Crashed() }
		phase := cfg.TrafficStart + rng.Uniform(sim.StreamFlowPhase, 0, 1/cfg.RatePerFlow)

		var shape *scengen.Traffic
		if gen != nil {
			shape = gen.Traffic
		}
		switch {
		case shape != nil && shape.Kind == scengen.TrafficOnOff:
			flow := &traffic.OnOff{
				Flow: f, Src: srcHost.ID(), Dst: dstHost.ID(),
				Rate: cfg.RatePerFlow, Bytes: cfg.PacketBytes,
				MeanOnS: shape.MeanOnS, MeanOffS: shape.MeanOffS,
			}
			flow.OnSend = onSend
			flow.Gate = srcAlive
			flow.Start(engine, src.snd, rng, phase)
			flows = append(flows, flow)
		case shape != nil && shape.Kind == scengen.TrafficReqResp:
			respBytes := shape.RespBytes
			if respBytes == 0 {
				respBytes = cfg.PacketBytes
			}
			// Response flows occupy ids Flows..2*Flows-1 so the metrics
			// keep the two directions of a pair distinct.
			rr := &traffic.ReqResp{
				Flow: f, RespFlow: cfg.Flows + f,
				A: srcHost.ID(), B: dstHost.ID(),
				Interval: 1 / cfg.RatePerFlow, Bytes: cfg.PacketBytes,
				RespBytes: respBytes, RespDelayS: shape.RespDelayS,
			}
			rr.OnSend = onSend
			rr.GateA = srcAlive
			rr.GateB = func() bool { return !dstHost.Dead() && !dstHost.Crashed() }
			rr.Start(engine, src.snd, dst.snd, phase)
			rrs = append(rrs, rr)
			flows = append(flows, rr)
		default:
			flow := &traffic.CBR{
				Flow: f, Src: srcHost.ID(), Dst: dstHost.ID(),
				Rate: cfg.RatePerFlow, Bytes: cfg.PacketBytes,
			}
			flow.OnSend = onSend
			flow.Gate = srcAlive
			flow.Start(engine, src.snd, phase)
			flows = append(flows, flow)
		}
	}
	if len(rrs) > 0 {
		rrDispatch = func(pkt *routing.DataPacket) {
			for _, rr := range rrs {
				rr.Delivered(pkt)
			}
		}
	}

	// Metrics sampling.
	limited := 0
	for _, r := range recs {
		if r.limited {
			limited++
		}
	}
	sample := func() {
		now := engine.Now()
		alive := 0
		consumed := 0.0
		for _, r := range recs {
			if !r.limited {
				continue
			}
			if !r.host.Dead() && !r.host.Crashed() {
				alive++
			}
			consumed += r.bat.Consumed(now)
		}
		col.SampleAlive(now, float64(alive)/float64(limited))
		col.SampleAen(now, consumed/(float64(limited)*cfg.InitialEnergyJ))
	}
	sample()
	sampler := sim.NewTicker(engine, cfg.SampleEvery, 0, sample)

	var shardStats *shard.Stats
	if cfg.Shards >= 2 {
		// Sharded execution: the coordinator's windowed advance/commit
		// loop replaces the single Engine.Run. Event order, random draws,
		// metrics, and traces are byte-identical to the serial path —
		// TestShardEquivalence holds the two to the same fingerprint.
		var groups []int
		if gen != nil && gen.Mobility != nil && gen.Mobility.Kind == scengen.MobilityGroup {
			// Group-mobility members share a mutable reference point, so
			// the plan must pin each group to a single owner.
			groups = make([]int, total)
			for i := range groups {
				groups[i] = i / gen.Mobility.GroupSize
			}
		}
		plan := shard.NewPlan(part, cfg.Shards, starts, groups)
		nodes := make([]shard.Node, total)
		for i := range recs {
			nodes[i] = recs[i].host
		}
		// Helper goroutines come out of the process-wide worker budget
		// shared with internal/batch; zero helpers just means the phases
		// run serially — results do not depend on the worker count.
		helpers := shard.AcquireWorkers(cfg.Shards - 1)
		pool := shard.NewPool(plan, nodes, helpers)
		bus.Scan = pool.Scan
		maxBytes := cfg.PacketBytes
		if gen != nil && gen.Traffic != nil && gen.Traffic.RespBytes > maxBytes {
			maxBytes = gen.Traffic.RespBytes
		}
		lookahead := shard.LookaheadFor(cfg.Radio,
			maxBytes+routing.DataHeader+radio.MACHeaderBytes, ras.DefaultLatency)
		coord := shard.NewCoordinator(engine, pool, shard.DefaultWindow, lookahead, rng)
		coord.Run(cfg.Duration)
		bus.Scan = nil
		pool.Close()
		shard.ReleaseWorkers(helpers)
		st := coord.Stats()
		shardStats = &st
	} else {
		engine.Run(cfg.Duration)
	}
	sampler.Stop()
	for _, f := range flows {
		f.Stop()
	}
	sample()

	// Tear down the radio: queued and in-flight frames go back to the
	// pool, after which every pooled frame must be accounted for. A
	// nonzero remainder means some component minted a frame and lost it —
	// the runtime counterpart of the framelease analyzer's static claim.
	channel.Shutdown()
	frameLeaks := channel.OutstandingFrames()

	// Collect results.
	res := &Results{
		Cfg:           cfg,
		Sent:          col.Sent(),
		Delivered:     col.Delivered(),
		Duplicates:    col.Duplicates(),
		DeliveryRate:  col.DeliveryRate(),
		MeanLatency:   col.MeanLatencySeconds(),
		MaxLatency:    col.MaxLatencySeconds(),
		MedianLatency: col.LatencyPercentile(0.5),
		Deaths:        col.Deaths(),
		FirstDeathAt:  col.FirstDeathAt(),
		LastAlive:     col.Alive.Last(),
		Radio:         channel.Counters(),
		PerKind:       channel.PerKind(),
		FrameLeaks:    frameLeaks,
		Protocol:      make(map[string]uint64),

		GatewayCrashes:        col.GatewayCrashes(),
		Reelections:           len(col.ReelectionLatencies()),
		MeanReelectionLatency: col.MeanReelectionLatency(),
		MeanRouteRepairTime:   col.MeanRouteRepairTime(),
		InFaultDeliveryRate:   col.InWindowDeliveryRate(),
		OutFaultDeliveryRate:  col.OutWindowDeliveryRate(),
		PagesDropped:          bus.PagesDropped,

		Shard:     shardStats,
		RxCache:   channel.RxCacheStats(),
		Collector: col,
	}
	for _, p := range col.Alive.Points {
		res.Alive = append(res.Alive, struct{ T, V float64 }{p.T, p.V})
	}
	for _, p := range col.Aen.Points {
		res.Aen = append(res.Aen, struct{ T, V float64 }{p.T, p.V})
	}
	for _, r := range recs {
		if r.statsFn == nil {
			continue
		}
		for k, v := range r.statsFn() {
			res.Protocol[k] += v
		}
		for k, v := range r.prev {
			res.Protocol[k] += v
		}
	}
	return res
}

func coreStats(s *core.Stats) map[string]uint64 {
	return map[string]uint64{
		"hellos":      s.HellosSent,
		"rreqs":       s.RREQsSent,
		"rreps":       s.RREPsSent,
		"rerrs":       s.RERRsSent,
		"retires":     s.RetiresSent,
		"transfers":   s.TransfersSent,
		"acqs":        s.ACQsSent,
		"leaves":      s.LeavesSent,
		"fwd":         s.DataForwarded,
		"delivered":   s.DataDelivered,
		"dropped":     s.DataDropped,
		"d_misdirect": s.DropMisdirect,
		"d_noroute":   s.DropNoRoute,
		"d_discovery": s.DropDiscovery,
		"d_unreach":   s.DropUnreach,
		"d_expired":   s.DropExpired,
		"pages":       s.PagesSent,
		"gridpages":   s.GridPagesSent,
		"elections":   s.ElectionsRun,
		"gateways":    s.BecameGateway,
		"nogateway":   s.NoGatewayEvnts,
		"sleeps":      s.SleepsEntered,
	}
}

func spanStats(s *span.Stats) map[string]uint64 {
	return map[string]uint64{
		"hellos":      s.HellosSent,
		"coords":      s.CoordAnnounces,
		"withdrawals": s.Withdrawals,
		"rreqs":       s.RREQsSent,
		"rreps":       s.RREPsSent,
		"fwd":         s.DataForwarded,
		"delivered":   s.DataDelivered,
		"dropped":     s.DataDropped,
		"sleeps":      s.SleepsEntered,
	}
}

func gafStats(s *gaf.Stats) map[string]uint64 {
	return map[string]uint64{
		"discoveries": s.DiscoveriesSent,
		"rreqs":       s.RREQsSent,
		"rreps":       s.RREPsSent,
		"rerrs":       s.RERRsSent,
		"fwd":         s.DataForwarded,
		"delivered":   s.DataDelivered,
		"dropped":     s.DataDropped,
		"sleeps":      s.SleepsEntered,
		"actives":     s.ActivePeriods,
	}
}
