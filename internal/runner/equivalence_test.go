package runner

import (
	"fmt"
	"testing"

	"ecgrid/internal/scenario"
	"ecgrid/internal/scengen"
)

// TestSpatialIndexEquivalence proves the radio channel's spatial
// neighbor index is an optimization, not a model change: every scenario
// must produce byte-identical metrics and trace fingerprints with the
// index (the default) and with Radio.BruteForce, which scans the full
// population exactly as the seed implementation did. The matrix covers
// both protocols, a jamming fault plan (the Interceptor path disables
// the Sure-candidate shortcut), and sparse vs. dense populations —
// dense is where the index actually prunes, sparse is where bucket
// boundary cases are most visible.
func TestSpatialIndexEquivalence(t *testing.T) {
	type variant struct {
		proto scenario.ProtocolKind
		fault string
	}
	variants := []variant{
		{scenario.ECGRID, ""},
		{scenario.SPAN, ""},
		{scenario.ECGRID, "jam-center"},
	}
	for _, v := range variants {
		for _, hosts := range []int{20, 200} {
			name := fmt.Sprintf("%s-n%d", v.proto, hosts)
			if v.fault != "" {
				name = fmt.Sprintf("%s-%s-n%d", v.proto, v.fault, hosts)
			}
			t.Run(name, func(t *testing.T) {
				cfg := scenario.Default(v.proto)
				cfg.Hosts = hosts
				cfg.Duration = 90
				if hosts >= 200 {
					cfg.Duration = 45 // dense runs are slow; keep CI snappy
				}
				cfg.Seed = int64(17 + hosts)
				if v.fault != "" {
					cfg.Faults = mustPreset(v.fault, cfg.Hosts, cfg.AreaSize, cfg.Duration)
				}
				ref := cfg
				ref.Radio.BruteForce = true

				indexed := fingerprint(cfg)
				brute := fingerprint(ref)
				if indexed != brute {
					t.Fatalf("spatial index diverged from brute-force reference — first divergence:\n%s",
						firstDiff(indexed, brute))
				}
			})
		}
	}
}

// TestSpatialIndexEquivalenceGenerated repeats the brute-force check on
// a generated (non-figure) scenario: clustered placement concentrates
// hosts per bucket, street mobility re-buckets on every intersection
// turn, and the obstacle interceptor forces the no-shortcut reception
// path — the combination most likely to expose an index divergence.
func TestSpatialIndexEquivalenceGenerated(t *testing.T) {
	cfg := scenario.Default(scenario.ECGRID)
	cfg.Hosts = 60
	cfg.Duration = 60
	cfg.Seed = 23
	cfg.Gen = &scengen.Spec{
		Deployment: &scengen.Deployment{Kind: scengen.DeployClustered, Clusters: 3, StdDevM: 100},
		Mobility:   &scengen.Mobility{Kind: scengen.MobilityManhattan, BlockM: 125},
		Traffic:    &scengen.Traffic{Kind: scengen.TrafficOnOff, MeanOnS: 8, MeanOffS: 6},
		Propagation: &scengen.Propagation{Obstacles: []scengen.Obstacle{
			{MinX: 300, MinY: 200, MaxX: 340, MaxY: 800, Atten: 0.7},
		}},
	}
	ref := cfg
	ref.Radio.BruteForce = true
	indexed := fingerprint(cfg)
	brute := fingerprint(ref)
	if indexed != brute {
		t.Fatalf("spatial index diverged on a generated scenario — first divergence:\n%s",
			firstDiff(indexed, brute))
	}
}

// TestSchedulerEquivalence proves the calendar-queue scheduler is an
// optimization, not a model change: every scenario must produce
// byte-identical metrics and trace fingerprints under the calendar
// queue (the default) and under Config.HeapScheduler, the binary-heap
// reference that reproduces the seed implementation's event order
// directly from the (when, seq) comparator. The matrix mirrors the
// spatial test: both protocols, plus sparse vs. dense populations —
// dense runs push the calendar through resize cycles and long
// same-bucket chains, sparse runs exercise the empty-year scan and
// the min-event jump.
func TestSchedulerEquivalence(t *testing.T) {
	for _, proto := range []scenario.ProtocolKind{scenario.ECGRID, scenario.SPAN} {
		for _, hosts := range []int{20, 200} {
			t.Run(fmt.Sprintf("%s-n%d", proto, hosts), func(t *testing.T) {
				cfg := scenario.Default(proto)
				cfg.Hosts = hosts
				cfg.Duration = 90
				if hosts >= 200 {
					cfg.Duration = 45 // dense runs are slow; keep CI snappy
				}
				cfg.Seed = int64(29 + hosts)

				ref := cfg
				ref.HeapScheduler = true

				calendar := fingerprint(cfg)
				heap := fingerprint(ref)
				if calendar != heap {
					t.Fatalf("calendar queue diverged from heap reference — first divergence:\n%s",
						firstDiff(calendar, heap))
				}
			})
		}
	}
}
