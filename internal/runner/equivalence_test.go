package runner

import (
	"fmt"
	"testing"

	"ecgrid/internal/scenario"
	"ecgrid/internal/scengen"
)

// TestSpatialIndexEquivalence proves the radio channel's spatial
// neighbor index is an optimization, not a model change: every scenario
// must produce byte-identical metrics and trace fingerprints with the
// index (the default) and with Radio.BruteForce, which scans the full
// population exactly as the seed implementation did. The matrix covers
// both protocols, a jamming fault plan (the Interceptor path disables
// the Sure-candidate shortcut), and sparse vs. dense populations —
// dense is where the index actually prunes, sparse is where bucket
// boundary cases are most visible.
func TestSpatialIndexEquivalence(t *testing.T) {
	type variant struct {
		proto scenario.ProtocolKind
		fault string
	}
	variants := []variant{
		{scenario.ECGRID, ""},
		{scenario.SPAN, ""},
		{scenario.ECGRID, "jam-center"},
	}
	for _, v := range variants {
		for _, hosts := range []int{20, 200} {
			name := fmt.Sprintf("%s-n%d", v.proto, hosts)
			if v.fault != "" {
				name = fmt.Sprintf("%s-%s-n%d", v.proto, v.fault, hosts)
			}
			t.Run(name, func(t *testing.T) {
				cfg := scenario.Default(v.proto)
				cfg.Hosts = hosts
				cfg.Duration = 90
				if hosts >= 200 {
					cfg.Duration = 45 // dense runs are slow; keep CI snappy
				}
				cfg.Seed = int64(17 + hosts)
				if v.fault != "" {
					cfg.Faults = mustPreset(v.fault, cfg.Hosts, cfg.AreaSize, cfg.Duration)
				}
				ref := cfg
				ref.Radio.BruteForce = true

				indexed := fingerprint(cfg)
				brute := fingerprint(ref)
				if indexed != brute {
					t.Fatalf("spatial index diverged from brute-force reference — first divergence:\n%s",
						firstDiff(indexed, brute))
				}
			})
		}
	}
}

// TestSpatialIndexEquivalenceGenerated repeats the brute-force check on
// a generated (non-figure) scenario: clustered placement concentrates
// hosts per bucket, street mobility re-buckets on every intersection
// turn, and the obstacle interceptor forces the no-shortcut reception
// path — the combination most likely to expose an index divergence.
func TestSpatialIndexEquivalenceGenerated(t *testing.T) {
	cfg := scenario.Default(scenario.ECGRID)
	cfg.Hosts = 60
	cfg.Duration = 60
	cfg.Seed = 23
	cfg.Gen = &scengen.Spec{
		Deployment: &scengen.Deployment{Kind: scengen.DeployClustered, Clusters: 3, StdDevM: 100},
		Mobility:   &scengen.Mobility{Kind: scengen.MobilityManhattan, BlockM: 125},
		Traffic:    &scengen.Traffic{Kind: scengen.TrafficOnOff, MeanOnS: 8, MeanOffS: 6},
		Propagation: &scengen.Propagation{Obstacles: []scengen.Obstacle{
			{MinX: 300, MinY: 200, MaxX: 340, MaxY: 800, Atten: 0.7},
		}},
	}
	ref := cfg
	ref.Radio.BruteForce = true
	indexed := fingerprint(cfg)
	brute := fingerprint(ref)
	if indexed != brute {
		t.Fatalf("spatial index diverged on a generated scenario — first divergence:\n%s",
			firstDiff(indexed, brute))
	}
}

// TestShardEquivalence proves the sharded parallel engine is an
// optimization, not a model change: every scenario must produce
// byte-identical metrics and trace fingerprints at -shards 1 (the
// serial reference, run verbatim) and every -shards K — the same
// contract Radio.BruteForce and HeapScheduler are held to. The matrix
// spans three protocols, three population sizes (the 1000-host case on
// a proportionally larger area so density stays paper-like), and shard
// counts that divide the grid unevenly (7 strips over 10 or 30
// columns); a faulted variant exercises the injector, crash/recovery,
// and paging-loss draws under sharding.
func TestShardEquivalence(t *testing.T) {
	type variant struct {
		proto scenario.ProtocolKind
		hosts int
		fault string
	}
	variants := []variant{
		{scenario.ECGRID, 20, ""},
		{scenario.ECGRID, 200, ""},
		{scenario.ECGRID, 1000, ""},
		{scenario.SPAN, 20, ""},
		{scenario.SPAN, 200, ""},
		{scenario.SPAN, 1000, ""},
		{scenario.GRID, 20, ""},
		{scenario.GRID, 200, ""},
		{scenario.GRID, 1000, ""},
		{scenario.ECGRID, 200, "mixed"},
	}
	for _, v := range variants {
		name := fmt.Sprintf("%s-n%d", v.proto, v.hosts)
		if v.fault != "" {
			name += "-" + v.fault
		}
		t.Run(name, func(t *testing.T) {
			cfg := scenario.Default(v.proto)
			cfg.Hosts = v.hosts
			cfg.Seed = int64(31 + v.hosts)
			switch {
			case v.hosts >= 1000:
				// Paper-like density at 1000 hosts needs a 3000 m side
				// (30 grid columns, so 7 strips still fit); keep the
				// simulated span short — the point is coverage of the
				// windowed loop, not a long campaign.
				cfg.AreaSize = 3000
				cfg.Duration = 8
				cfg.Flows = 30
			case v.hosts >= 200:
				cfg.Duration = 45
			default:
				cfg.Duration = 90
			}
			if v.fault != "" {
				cfg.Faults = mustPreset(v.fault, cfg.Hosts, cfg.AreaSize, cfg.Duration)
			}
			ref := cfg
			ref.Shards = 1 // the serial path, verbatim
			serial := fingerprint(ref)
			for _, k := range []int{2, 4, 7} {
				sharded := cfg
				sharded.Shards = k
				if got := fingerprint(sharded); got != serial {
					t.Fatalf("-shards %d diverged from the serial reference — first divergence:\n%s",
						k, firstDiff(got, serial))
				}
			}
		})
	}
}

// TestShardEquivalenceGenerated repeats the shard check on a generated
// scenario chosen to stress the plan: clustered deployment concentrates
// whole strips, group mobility forces pinned co-ownership (the shared
// reference point must never gain a second writer), and request/response
// traffic plus an obstacle map run every optional hook under sharding.
func TestShardEquivalenceGenerated(t *testing.T) {
	cfg := scenario.Default(scenario.ECGRID)
	cfg.Hosts = 60
	cfg.Duration = 60
	cfg.Seed = 41
	cfg.Gen = &scengen.Spec{
		Deployment: &scengen.Deployment{Kind: scengen.DeployClustered, Clusters: 3, StdDevM: 100},
		Mobility:   &scengen.Mobility{Kind: scengen.MobilityGroup, GroupSize: 6, RadiusM: 80},
		Traffic:    &scengen.Traffic{Kind: scengen.TrafficReqResp, RespBytes: 256, RespDelayS: 0.2},
		Propagation: &scengen.Propagation{Obstacles: []scengen.Obstacle{
			{MinX: 300, MinY: 200, MaxX: 340, MaxY: 800, Atten: 0.7},
		}},
	}
	ref := cfg
	ref.Shards = 1
	serial := fingerprint(ref)
	for _, k := range []int{2, 4, 7} {
		sharded := cfg
		sharded.Shards = k
		if got := fingerprint(sharded); got != serial {
			t.Fatalf("-shards %d diverged on a generated scenario — first divergence:\n%s",
				k, firstDiff(got, serial))
		}
	}
}

// TestSchedulerEquivalence proves the calendar-queue scheduler is an
// optimization, not a model change: every scenario must produce
// byte-identical metrics and trace fingerprints under the calendar
// queue (the default) and under Config.HeapScheduler, the binary-heap
// reference that reproduces the seed implementation's event order
// directly from the (when, seq) comparator. The matrix mirrors the
// spatial test: both protocols, plus sparse vs. dense populations —
// dense runs push the calendar through resize cycles and long
// same-bucket chains, sparse runs exercise the empty-year scan and
// the min-event jump.
func TestSchedulerEquivalence(t *testing.T) {
	for _, proto := range []scenario.ProtocolKind{scenario.ECGRID, scenario.SPAN} {
		for _, hosts := range []int{20, 200} {
			t.Run(fmt.Sprintf("%s-n%d", proto, hosts), func(t *testing.T) {
				cfg := scenario.Default(proto)
				cfg.Hosts = hosts
				cfg.Duration = 90
				if hosts >= 200 {
					cfg.Duration = 45 // dense runs are slow; keep CI snappy
				}
				cfg.Seed = int64(29 + hosts)

				ref := cfg
				ref.HeapScheduler = true

				calendar := fingerprint(cfg)
				heap := fingerprint(ref)
				if calendar != heap {
					t.Fatalf("calendar queue diverged from heap reference — first divergence:\n%s",
						firstDiff(calendar, heap))
				}
			})
		}
	}
}
