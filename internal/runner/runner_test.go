package runner

import (
	"testing"

	"ecgrid/internal/core"
	"ecgrid/internal/scenario"
)

func gridLike() core.Options { return core.GridOptions() }

// small returns a quick scenario for tests.
func small(p scenario.ProtocolKind) scenario.Config {
	cfg := scenario.Default(p)
	cfg.Hosts = 40
	cfg.Duration = 60
	return cfg
}

func TestRunECGRIDDeliversTraffic(t *testing.T) {
	r := Run(small(scenario.ECGRID))
	if r.Sent == 0 {
		t.Fatal("no packets sent")
	}
	if r.DeliveryRate < 0.5 {
		t.Fatalf("delivery rate %.3f, want ≥ 0.5 in a light scenario", r.DeliveryRate)
	}
	if r.MeanLatency <= 0 || r.MeanLatency > 1 {
		t.Fatalf("mean latency %v s implausible", r.MeanLatency)
	}
	if r.Protocol["hellos"] == 0 || r.Protocol["gateways"] == 0 {
		t.Fatalf("protocol counters empty: %v", r.Protocol)
	}
	if r.Protocol["sleeps"] == 0 {
		t.Fatal("no host ever slept under ECGRID")
	}
}

func TestRunGRIDNeverSleeps(t *testing.T) {
	r := Run(small(scenario.GRID))
	if r.Protocol["sleeps"] != 0 {
		t.Fatalf("GRID recorded %d sleeps", r.Protocol["sleeps"])
	}
	if r.DeliveryRate < 0.5 {
		t.Fatalf("delivery rate %.3f", r.DeliveryRate)
	}
}

func TestRunGAFModelOne(t *testing.T) {
	r := Run(small(scenario.GAF))
	if r.DeliveryRate < 0.6 {
		t.Fatalf("GAF delivery rate %.3f", r.DeliveryRate)
	}
	if r.Protocol["sleeps"] == 0 {
		t.Fatal("no GAF forwarder ever slept")
	}
	// Endpoint hosts have infinite batteries and are excluded from the
	// alive fraction, which must therefore be 1.0 after only 60 s.
	if r.LastAlive != 1.0 {
		t.Fatalf("alive fraction %.2f after 60 s", r.LastAlive)
	}
}

func TestRunIsDeterministicPerSeed(t *testing.T) {
	for _, p := range []scenario.ProtocolKind{scenario.ECGRID, scenario.GRID, scenario.GAF} {
		a := Run(small(p))
		b := Run(small(p))
		if a.Sent != b.Sent || a.Delivered != b.Delivered || a.MeanLatency != b.MeanLatency {
			t.Fatalf("%s: runs with equal seeds differ: %d/%d vs %d/%d",
				p, a.Delivered, a.Sent, b.Delivered, b.Sent)
		}
		if a.Radio.FramesSent != b.Radio.FramesSent {
			t.Fatalf("%s: frame counts differ: %d vs %d", p, a.Radio.FramesSent, b.Radio.FramesSent)
		}
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	cfg := small(scenario.ECGRID)
	a := Run(cfg)
	cfg.Seed = 2
	b := Run(cfg)
	if a.Radio.FramesSent == b.Radio.FramesSent && a.Delivered == b.Delivered {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestEnergyConservingOrdering(t *testing.T) {
	// The headline claim: at equal time, ECGRID consumes less than GRID.
	ec := Run(small(scenario.ECGRID))
	gr := Run(small(scenario.GRID))
	if ec.Collector.Aen.Last() >= gr.Collector.Aen.Last() {
		t.Fatalf("aen(ECGRID)=%.3f not below aen(GRID)=%.3f",
			ec.Collector.Aen.Last(), gr.Collector.Aen.Last())
	}
}

func TestGridNetworkDiesNearPaperTime(t *testing.T) {
	cfg := scenario.Default(scenario.GRID)
	cfg.Duration = 700
	r := Run(cfg)
	// The paper: "the network that runs GRID ... is down when the
	// simulation time = 590 seconds". All hosts idle at ≈0.87-0.9 W
	// from 500 J ⇒ collapse in the 520..610 s band.
	if r.FirstDeathAt < 450 || r.FirstDeathAt > 600 {
		t.Fatalf("first GRID death at %.0f s, want ≈520-590", r.FirstDeathAt)
	}
	if r.Collector.Alive.At(650) > 0.05 {
		t.Fatalf("GRID still %.0f%% alive at 650 s", 100*r.Collector.Alive.At(650))
	}
}

func TestECGRIDOutlivesGRID(t *testing.T) {
	gcfg := scenario.Default(scenario.GRID)
	gcfg.Duration = 800
	ecfg := scenario.Default(scenario.ECGRID)
	ecfg.Duration = 800
	gr := Run(gcfg)
	ec := Run(ecfg)
	if ec.Collector.Alive.At(650) <= gr.Collector.Alive.At(650) {
		t.Fatalf("ECGRID alive %.2f not above GRID %.2f at 650 s",
			ec.Collector.Alive.At(650), gr.Collector.Alive.At(650))
	}
	if ec.Collector.Alive.At(650) < 0.5 {
		t.Fatalf("ECGRID only %.2f alive at 650 s", ec.Collector.Alive.At(650))
	}
}

func TestAliveSeriesMonotoneNonIncreasing(t *testing.T) {
	cfg := scenario.Default(scenario.ECGRID)
	cfg.Duration = 700
	r := Run(cfg)
	prev := 2.0
	for _, pt := range r.Alive {
		if pt.V > prev+1e-9 {
			t.Fatalf("alive fraction increased at t=%v", pt.T)
		}
		prev = pt.V
	}
}

func TestAenSeriesMonotoneNonDecreasing(t *testing.T) {
	cfg := small(scenario.ECGRID)
	r := Run(cfg)
	prev := -1.0
	for _, pt := range r.Aen {
		if pt.V < prev-1e-9 {
			t.Fatalf("aen decreased at t=%v", pt.T)
		}
		prev = pt.V
	}
}

func TestRunInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run with invalid config did not panic")
		}
	}()
	Run(scenario.Config{})
}

func TestRunNoTraffic(t *testing.T) {
	cfg := small(scenario.ECGRID)
	cfg.Flows = 0
	r := Run(cfg)
	if r.Sent != 0 || r.Delivered != 0 {
		t.Fatal("traffic appeared with zero flows")
	}
	// Energy is still consumed (HELLOs, idle).
	if r.Collector.Aen.Last() <= 0 {
		t.Fatal("no energy consumed")
	}
}

func TestECGRIDOptionOverride(t *testing.T) {
	cfg := small(scenario.ECGRID)
	// Force GRID behaviour through the override: no sleeps must occur.
	opts := cfg.ECGRIDOptions
	_ = opts
	o := gridLike()
	cfg.ECGRIDOptions = &o
	r := Run(cfg)
	if r.Protocol["sleeps"] != 0 {
		t.Fatalf("override ignored: %d sleeps", r.Protocol["sleeps"])
	}
}

func TestRunRandomDirectionMobility(t *testing.T) {
	cfg := small(scenario.ECGRID)
	cfg.Mobility = "direction"
	r := Run(cfg)
	if r.DeliveryRate < 0.4 {
		t.Fatalf("delivery rate %.3f under random-direction mobility", r.DeliveryRate)
	}
}

func TestRunPlainAODV(t *testing.T) {
	r := Run(small(scenario.AODV))
	if r.DeliveryRate < 0.7 {
		t.Fatalf("AODV delivery rate %.3f", r.DeliveryRate)
	}
	if r.Protocol["sleeps"] != 0 {
		t.Fatalf("plain AODV slept %d times", r.Protocol["sleeps"])
	}
}

func TestAODVConsumesLikeGRID(t *testing.T) {
	// Always-on baselines burn idle power at the same rate; AODV's aen
	// must land near GRID's, far above ECGRID's.
	ao := Run(small(scenario.AODV))
	gr := Run(small(scenario.GRID))
	ec := Run(small(scenario.ECGRID))
	a, g, e := ao.Collector.Aen.Last(), gr.Collector.Aen.Last(), ec.Collector.Aen.Last()
	if a < 0.8*g || a > 1.2*g {
		t.Fatalf("aen AODV %.3f vs GRID %.3f: not comparable", a, g)
	}
	if e >= a {
		t.Fatalf("ECGRID aen %.3f not below AODV %.3f", e, a)
	}
}

func TestRunSpan(t *testing.T) {
	cfg := small(scenario.SPAN)
	r := Run(cfg)
	if r.DeliveryRate < 0.5 {
		t.Fatalf("Span delivery rate %.3f", r.DeliveryRate)
	}
	if r.Protocol["sleeps"] == 0 {
		t.Fatal("no Span host ever duty-cycled")
	}
	if r.Protocol["coords"] == 0 {
		t.Fatal("no coordinator ever elected")
	}
	// The PSM beacon wait dominates latency: it must exceed GAF-style
	// always-on paths but stay within a few beacon periods.
	if r.MeanLatency > 3 {
		t.Fatalf("Span mean latency %.2f s implausible", r.MeanLatency)
	}
}
