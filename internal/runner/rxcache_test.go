package runner

import (
	"fmt"
	"testing"

	"ecgrid/internal/faults"
	"ecgrid/internal/scenario"
	"ecgrid/internal/scengen"
)

// TestRxCacheEquivalence proves the receiver-plane cache is an
// optimization, not a model change: every scenario must produce
// byte-identical metrics and trace fingerprints with the cache (the
// default) and with Radio.NoRxCache, the uncached reference path — the
// same contract Radio.BruteForce, HeapScheduler, and Shards are held
// to. The matrix spans the paper protocol and the two duty-cycled
// baselines (SPAN and GAF sleep most stations, churning the listen
// epochs the cache is keyed on) across three population sizes; the
// faulted variant combines a gateway crash (detach/re-attach epochs, a
// recovery re-insert) with a jamming window (the Interceptor path must
// see live receiver positions on cache hits).
func TestRxCacheEquivalence(t *testing.T) {
	type variant struct {
		proto scenario.ProtocolKind
		hosts int
		fault bool
	}
	variants := []variant{
		{scenario.ECGRID, 20, false},
		{scenario.ECGRID, 200, false},
		{scenario.ECGRID, 1000, false},
		{scenario.SPAN, 20, false},
		{scenario.SPAN, 200, false},
		{scenario.SPAN, 1000, false},
		{scenario.GAF, 20, false},
		{scenario.GAF, 200, false},
		{scenario.GAF, 1000, false},
		{scenario.ECGRID, 200, true},
		{scenario.GAF, 200, true},
	}
	for _, v := range variants {
		name := fmt.Sprintf("%s-n%d", v.proto, v.hosts)
		if v.fault {
			name += "-crash+jam"
		}
		t.Run(name, func(t *testing.T) {
			cfg := scenario.Default(v.proto)
			cfg.Hosts = v.hosts
			cfg.Seed = int64(53 + v.hosts)
			switch {
			case v.hosts >= 1000:
				// Paper-like density at 1000 hosts needs a 3000 m side;
				// keep the simulated span short — the point is cache
				// churn coverage, not a long campaign.
				cfg.AreaSize = 3000
				cfg.Duration = 8
				cfg.Flows = 30
			case v.hosts >= 200:
				cfg.Duration = 45
			default:
				cfg.Duration = 90
			}
			if v.fault {
				cfg.Faults = crashPlusJam(cfg.Hosts, cfg.AreaSize, cfg.Duration)
			}
			ref := cfg
			ref.Radio.NoRxCache = true

			cached := fingerprint(cfg)
			uncached := fingerprint(ref)
			if cached != uncached {
				t.Fatalf("receiver cache diverged from NoRxCache reference — first divergence:\n%s",
					firstDiff(cached, uncached))
			}
		})
	}
}

// crashPlusJam composes the gateway-crash and jam-center presets into
// the adversarial plan ISSUE 10 names: membership churn and the
// Interceptor running in one schedule.
func crashPlusJam(hosts int, areaSize, duration float64) *faults.Plan {
	p := mustPreset("gateway-crash", hosts, areaSize, duration)
	p.Jams = mustPreset("jam-center", hosts, areaSize, duration).Jams
	return p
}

// TestRxCacheEquivalenceGenerated repeats the NoRxCache check on the two
// generated shapes the cache is most stressed by: a dense clustered
// Manhattan scenario (high hit value, street turns re-bucketing through
// covered cells, an obstacle Interceptor on the hit path) and a
// group-patrol scenario (whole clusters drifting together, so covers
// churn in bursts while members stay mutually in range).
func TestRxCacheEquivalenceGenerated(t *testing.T) {
	specs := map[string]*scengen.Spec{
		"dense-manhattan": {
			Deployment: &scengen.Deployment{Kind: scengen.DeployClustered, Clusters: 3, StdDevM: 100},
			Mobility:   &scengen.Mobility{Kind: scengen.MobilityManhattan, BlockM: 125},
			Traffic:    &scengen.Traffic{Kind: scengen.TrafficOnOff, MeanOnS: 8, MeanOffS: 6},
			Propagation: &scengen.Propagation{Obstacles: []scengen.Obstacle{
				{MinX: 300, MinY: 200, MaxX: 340, MaxY: 800, Atten: 0.7},
			}},
		},
		"group-patrol": {
			Deployment: &scengen.Deployment{Kind: scengen.DeployClustered, Clusters: 4, StdDevM: 120},
			Mobility:   &scengen.Mobility{Kind: scengen.MobilityGroup, GroupSize: 6, RadiusM: 80},
			Traffic:    &scengen.Traffic{Kind: scengen.TrafficReqResp, RespBytes: 256, RespDelayS: 0.2},
		},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			cfg := scenario.Default(scenario.ECGRID)
			cfg.Hosts = 60
			cfg.Duration = 60
			cfg.Seed = 59
			cfg.Gen = spec
			ref := cfg
			ref.Radio.NoRxCache = true
			cached := fingerprint(cfg)
			uncached := fingerprint(ref)
			if cached != uncached {
				t.Fatalf("receiver cache diverged on a generated scenario — first divergence:\n%s",
					firstDiff(cached, uncached))
			}
		})
	}
}

// TestRxCacheShardEquivalence closes the composition square: the cache
// on the sharded engine must still match the uncached serial reference.
// Cache state mutates only in the serial commit phase, so this guards
// against the parallel probe ever touching it.
func TestRxCacheShardEquivalence(t *testing.T) {
	cfg := scenario.Default(scenario.ECGRID)
	cfg.Hosts = 200
	cfg.Duration = 30
	cfg.Seed = 61
	ref := cfg
	ref.Radio.NoRxCache = true
	ref.Shards = 1
	cfg.Shards = 4
	cached := fingerprint(cfg)
	uncached := fingerprint(ref)
	if cached != uncached {
		t.Fatalf("receiver cache under -shards 4 diverged from the uncached serial reference — first divergence:\n%s",
			firstDiff(cached, uncached))
	}
}
