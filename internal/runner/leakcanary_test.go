package runner

import (
	"testing"

	"ecgrid/internal/scenario"
)

// TestFig8aFrameLeakCanary is the runtime cross-check of the framelease
// static analyzer: run the Fig 8a density sweep (GRID and ECGRID at the
// fast-tier densities and horizon) and assert the frame pool's
// outstanding-lease counter returns to zero once the radio is torn
// down. Every pooled frame minted over the run — queued, retried, in
// flight at the horizon, or dropped by faults and sleep transitions —
// must be accounted for; one frame dropped on one path anywhere in the
// stack fails this test.
func TestFig8aFrameLeakCanary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full simulations")
	}
	for _, proto := range []scenario.ProtocolKind{scenario.GRID, scenario.ECGRID} {
		for _, hosts := range []int{50, 200} {
			cfg := scenario.Default(proto)
			cfg.MaxSpeedMS = 1
			cfg.Seed = 1
			cfg.Hosts = hosts
			cfg.Duration = 700 // the Fast Fig8a horizon
			r := Run(cfg)
			if r.Radio.FramesPooled == 0 {
				t.Fatalf("%v n=%d: no pooled frames minted; canary is vacuous", proto, hosts)
			}
			if r.FrameLeaks != 0 {
				t.Errorf("%v n=%d: %d pooled frames leaked (%d minted, %d released)",
					proto, hosts, r.FrameLeaks, r.Radio.FramesPooled, r.Radio.FramesReleased)
			}
		}
	}
}
