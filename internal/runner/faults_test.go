package runner

import (
	"testing"

	"ecgrid/internal/faults"
	"ecgrid/internal/scenario"
)

func faulted(p scenario.ProtocolKind, preset string, seed int64) scenario.Config {
	cfg := scenario.Default(p)
	cfg.Hosts = 40
	cfg.Duration = 120
	cfg.Seed = seed
	plan, err := faults.Preset(preset, cfg.Hosts, cfg.AreaSize, cfg.Duration)
	if err != nil {
		panic(err)
	}
	cfg.Faults = plan
	return cfg
}

func TestGatewayCrashRecovery(t *testing.T) {
	r := Run(faulted(scenario.ECGRID, "gateway-crash", 3))
	if r.GatewayCrashes < 1 {
		t.Fatalf("GatewayCrashes = %d, want ≥ 1", r.GatewayCrashes)
	}
	if r.Reelections < 1 {
		t.Fatalf("Reelections = %d, want ≥ 1: the grid never replaced its gateway", r.Reelections)
	}
	if r.MeanReelectionLatency <= 0 {
		t.Fatalf("MeanReelectionLatency = %g, want finite > 0", r.MeanReelectionLatency)
	}
	if r.MeanRouteRepairTime < 0 {
		t.Fatalf("MeanRouteRepairTime = %g, want measured", r.MeanRouteRepairTime)
	}
	if r.DeliveryRate <= 0 {
		t.Fatal("no traffic delivered under a single gateway crash")
	}
	// Delivery recovers after the fault window: out-of-window traffic
	// must flow (the windows cover only the middle half of the run).
	if r.OutFaultDeliveryRate <= 0 {
		t.Fatalf("OutFaultDeliveryRate = %g, want > 0", r.OutFaultDeliveryRate)
	}
}

func TestJamCenterDropsFrames(t *testing.T) {
	r := Run(faulted(scenario.ECGRID, "jam-center", 7))
	if r.Radio.Jammed == 0 {
		t.Fatal("jam-center preset jammed no frames")
	}
	if r.Sent == 0 || r.Delivered == 0 {
		t.Fatalf("sent=%d delivered=%d: jamming a central rectangle must not kill all traffic", r.Sent, r.Delivered)
	}
}

func TestLossyRASDropsPages(t *testing.T) {
	r := Run(faulted(scenario.ECGRID, "lossy-ras", 11))
	if r.PagesDropped == 0 {
		t.Fatal("lossy-ras preset dropped no pages")
	}
	if r.DeliveryRate <= 0 {
		t.Fatal("no delivery under lossy paging")
	}
}

func TestNoPlanLeavesRecoveryUnmeasured(t *testing.T) {
	r := Run(small(scenario.ECGRID))
	if r.GatewayCrashes != 0 || r.Reelections != 0 {
		t.Fatalf("crash metrics nonzero without a plan: %d/%d", r.GatewayCrashes, r.Reelections)
	}
	if r.MeanReelectionLatency != -1 || r.MeanRouteRepairTime != -1 {
		t.Fatalf("latencies measured without faults: %g/%g", r.MeanReelectionLatency, r.MeanRouteRepairTime)
	}
	if r.InFaultDeliveryRate != -1 {
		t.Fatalf("InFaultDeliveryRate = %g without windows, want -1", r.InFaultDeliveryRate)
	}
	if r.PagesDropped != 0 {
		t.Fatalf("PagesDropped = %d without a plan", r.PagesDropped)
	}
}
